"""Budget recommender semantics plus the CLI's golden table.

The conservative rule (a FIT budget is judged against the Wilson 95%
*upper* bound, and feasibility of any point implies a feasible front
point) is exercised on synthetic metrics; the golden test pins the
full ``repro recommend`` rendering for a tiny pinned grid — seed,
trials and workload fixed — so any drift in the numbers *or* the
presentation is a visible diff.
"""

import contextlib
import io

import pytest

from repro.autotune import (
    DesignPoint,
    PointMetrics,
    feasible,
    pareto_front,
    recommend,
    resolve_objectives,
)
from repro.cli import main as cli_main


def metrics(label_n, area, fit, benchmark="mesa"):
    point = DesignPoint(
        benchmark=benchmark,
        scheme="non-uniform",
        codec="secded",
        interval=262144 + label_n,  # distinct labels for tie-breaks
        ecc_entries=1,
        write_buffer=16,
        variant="standard",
        scenario="nominal",
    )
    return PointMetrics(
        point=point,
        area_kib=area,
        fit=fit,
        mttf_hours=(1e6, 5e5, 2e6),
        energy_uj=1.0,
        ipc=None,
        traffic_pct=1.0,
        dirty_pct=10.0,
        trials=200,
    )


def front_of(points):
    specs = resolve_objectives(("area", "fit"))
    return pareto_front(
        [{s.name: s.interval(m) for s in specs} for m in points],
        [s.name for s in specs],
    )


class TestFeasible:
    def test_no_budgets_means_everything_is_feasible(self):
        assert feasible(metrics(0, 54.0, (300.0, 200.0, 400.0)),
                        None, None)

    def test_fit_budget_uses_the_upper_bound(self):
        m = metrics(0, 54.0, (300.0, 200.0, 400.0))
        assert feasible(m, 400.0, None)
        assert not feasible(m, 399.0, None)  # value 300 is not enough

    def test_area_budget_is_exact(self):
        m = metrics(0, 54.0, (300.0, 200.0, 400.0))
        assert feasible(m, None, 54.0)
        assert not feasible(m, None, 53.9)


class TestRecommend:
    def test_min_area_feasible_front_point_wins(self):
        points = [
            metrics(0, 132.0, (50.0, 10.0, 90.0)),
            metrics(1, 54.0, (300.0, 200.0, 400.0)),
            metrics(2, 20.0, (900.0, 700.0, 1100.0)),
        ]
        chosen, best = recommend(points, front_of(points),
                                 fit_budget=500.0)
        assert chosen == 1  # index 2 violates FIT, 1 is smaller than 0
        assert best == {"min_fit_hi": 90.0, "min_area_kib": 20.0}

    def test_infeasible_returns_none_with_best_numbers(self):
        points = [metrics(0, 54.0, (300.0, 200.0, 400.0))]
        chosen, best = recommend(points, front_of(points),
                                 fit_budget=100.0)
        assert chosen is None
        assert best["min_fit_hi"] == 400.0

    def test_area_ties_break_on_fit_then_label(self):
        points = [
            metrics(1, 54.0, (300.0, 200.0, 400.0)),
            metrics(0, 54.0, (250.0, 150.0, 350.0)),
        ]
        chosen, _ = recommend(points, front_of(points), area_budget=60.0)
        assert chosen == 1  # same area, lower FIT point estimate

    def test_feasible_point_implies_feasible_front_choice(self):
        # Index 1 is feasible but dominated by 0; the recommendation
        # must still succeed (on the dominator), per the docstring's
        # conservative-rule consequence.
        points = [
            metrics(0, 54.0, (100.0, 50.0, 150.0)),
            metrics(1, 60.0, (300.0, 200.0, 400.0)),
        ]
        front = front_of(points)
        assert front == [0]
        chosen, _ = recommend(points, front, fit_budget=400.0)
        assert chosen == 0

    def test_empty_metrics(self):
        chosen, best = recommend([], [], fit_budget=1.0)
        assert chosen is None and best == {}


GOLDEN_FLAGS = [
    "recommend",
    "--benchmarks", "mesa",
    "--schemes", "non-uniform", "uniform-ecc", "parity-only",
    "--codecs", "secded",
    "--intervals", "256K",
    "--objectives", "area", "fit",
    "--trials", "200",
    "--trials-per-shard", "100",
    "--refs", "4000",
    "--warmup", "1000",
    "--seed", "0",
    "--fit-budget", "3000",
    "--area-budget", "100",
]

GOLDEN = """\
budgets: FIT ≤ 3000 (95% upper bound), area ≤ 100 KiB
Recommended design points
benchmark  recommended point   area KiB  FIT
---------  ------------------  --------  ---------------
mesa       parity-only/secded  20.0      685.0 (≤1078.8)

mesa: Pareto front over area, fit (* = non-dominated, CI-aware)
   design point             area  fit
-  -----------------------  ----  ------------------
*  non-uniform/secded/256K  54    344.2 [175.6, 662]
*  uniform-ecc/secded       132   0 [0, 177.9]
*  parity-only/secded       20    685 [426.8, 1079]

grid: 3 points (3 executed, 0 cached)
"""


def test_golden_recommend_table(tmp_path):
    """The pinned grid's rendering, numbers and all.

    Compared line by line with trailing padding stripped (the table
    renderer right-pads cells); everything else must match exactly.
    """
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = cli_main(GOLDEN_FLAGS + ["--cache-dir", str(tmp_path)])
    assert rc == 0
    got = [line.rstrip() for line in out.getvalue().splitlines()]
    assert got == GOLDEN.splitlines()
