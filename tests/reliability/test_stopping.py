"""Wilson intervals and the sequential stopping rule."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reliability.stopping import (
    StoppingRule,
    Z95,
    wilson_half_width,
    wilson_interval,
)


class TestWilsonInterval:
    def test_textbook_values(self):
        # Standard worked example: 5/10 at 95%.
        lo, hi = wilson_interval(5, 10)
        assert lo == pytest.approx(0.2366, abs=1e-3)
        assert hi == pytest.approx(0.7634, abs=1e-3)

    def test_zero_successes_stays_wide(self):
        # The Wald interval would be (0, 0) here; Wilson's upper bound
        # is z²/(n+z²) — honestly nonzero.
        lo, hi = wilson_interval(0, 10)
        assert lo == 0.0
        assert hi == pytest.approx(Z95**2 / (10 + Z95**2), abs=1e-9)

    def test_all_successes_mirrors_zero(self):
        lo0, hi0 = wilson_interval(0, 50)
        lo1, hi1 = wilson_interval(50, 50)
        assert lo1 == pytest.approx(1.0 - hi0, abs=1e-12)
        assert hi1 == 1.0

    def test_no_trials_is_uninformative(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        assert wilson_half_width(0, 0) == 0.5

    @pytest.mark.parametrize("s,n", [(-1, 10), (11, 10), (0, -1)])
    def test_rejects_bad_counts(self, s, n):
        with pytest.raises(ValueError):
            wilson_interval(s, n)

    @given(
        n=st.integers(min_value=1, max_value=100_000),
        frac=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_interval_brackets_the_point_estimate(self, n, frac):
        s = round(frac * n)
        lo, hi = wilson_interval(s, n)
        assert 0.0 <= lo <= s / n <= hi <= 1.0

    @given(
        s=st.integers(min_value=0, max_value=100),
        scale=st.integers(min_value=2, max_value=50),
    )
    def test_more_trials_narrow_the_interval(self, s, scale):
        # Same observed rate, `scale`× the evidence: never wider.
        before = wilson_half_width(s, 100)
        after = wilson_half_width(s * scale, 100 * scale)
        assert after <= before + 1e-12


class TestStoppingRule:
    def test_never_stops_before_min_trials(self):
        rule = StoppingRule(target_half_width=0.5, min_trials=100)
        assert not rule.should_stop(0, 99)
        assert rule.should_stop(0, 100)  # hw(0,100) ~ 0.018 < 0.5

    def test_max_trials_is_a_hard_budget(self):
        rule = StoppingRule(
            target_half_width=0.001, min_trials=10, max_trials=1000
        )
        # Half-width at p=0.5 with n=1000 is ~0.03 >> 0.001 — only the
        # budget can stop this.
        assert not rule.should_stop(400, 800)
        assert rule.should_stop(500, 1000)

    def test_stops_exactly_when_half_width_reached(self):
        rule = StoppingRule(target_half_width=0.01, min_trials=100)
        n_loose = 2_000  # hw(1%, 2k) ≈ 0.0048? no: compute below
        hw = wilson_half_width(n_loose // 100, n_loose)
        assert rule.should_stop(n_loose // 100, n_loose) == (hw <= 0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            StoppingRule(target_half_width=0.0)
        with pytest.raises(ValueError):
            StoppingRule(target_half_width=1.5)
        with pytest.raises(ValueError):
            StoppingRule(min_trials=0)
        with pytest.raises(ValueError):
            StoppingRule(min_trials=10, max_trials=5)

    @pytest.mark.parametrize("p_true", [0.003, 0.05, 0.4])
    def test_synthetic_bernoulli_stream(self, p_true):
        """Feed the rule a simulated stream in rounds; at the stopping
        point the achieved half-width must meet the target, and the
        true rate must (here) be inside the interval."""
        rule = StoppingRule(target_half_width=0.02, min_trials=500)
        rng = random.Random(1234)
        successes = trials = 0
        while True:
            for _ in range(250):  # one round
                trials += 1
                successes += rng.random() < p_true
            if rule.should_stop(successes, trials):
                break
            assert trials < 200_000, "rule failed to converge"
        assert trials >= rule.min_trials
        assert wilson_half_width(successes, trials) <= 0.02
        # A 95% interval misses ~5% of the time; allow a small margin
        # so the fixed-seed stream stays a determinism test, not a
        # coverage lottery.
        lo, hi = wilson_interval(successes, trials)
        assert lo - 0.01 <= p_true <= hi + 0.01

    def test_decision_is_a_pure_function_of_counts(self):
        rule = StoppingRule(target_half_width=0.02, min_trials=500)
        # However the counts were accumulated (worker order, resume),
        # the same aggregate gives the same decision.
        for s, n in [(0, 500), (5, 500), (100, 5000)]:
            assert rule.should_stop(s, n) == rule.should_stop(s, n)
            assert rule.half_width(s, n) == wilson_half_width(s, n)
