"""The fault model: domains, outcome taxonomy, trial lifecycle."""

import random

import pytest

from repro.core.policy import (
    NonUniformPolicy,
    UniformEccPolicy,
    UniformParityPolicy,
)
from repro.reliability.kernel import LinePool
from repro.reliability.model import (
    DOMAIN_ORDER,
    FaultDomain,
    FaultModelConfig,
    SCHEMES,
    TrialOutcome,
    _inject_data,
    _inject_status,
    domain_bits,
    run_trial,
    scheme_policy,
    stored_bits_per_line,
)


class TestConfigAndTaxonomy:
    def test_only_due_and_sdc_are_failures(self):
        failures = {o for o in TrialOutcome if o.is_failure}
        assert failures == {TrialOutcome.DUE, TrialOutcome.SDC}

    def test_scheme_registry(self):
        assert isinstance(scheme_policy("uniform-ecc"), UniformEccPolicy)
        assert isinstance(scheme_policy("non-uniform"), NonUniformPolicy)
        assert isinstance(scheme_policy("parity-only"), UniformParityPolicy)
        with pytest.raises(ValueError, match="unknown scheme"):
            scheme_policy("raid")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"line_bytes": 60},
            {"dirty_fraction": 1.5},
            {"double_bit_fraction": -0.1},
            {"read_fraction": 2.0},
            {"status_bits": 1},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultModelConfig(**kwargs)


class TestDomainWeights:
    def test_bits_are_area_proportional(self):
        config = FaultModelConfig()
        bits = domain_bits(scheme_policy("uniform-ecc"), True, config)
        assert bits[FaultDomain.DATA] == 512
        assert bits[FaultDomain.TAG] == config.tag_bits + 1
        assert bits[FaultDomain.STATUS] == config.status_bits
        assert bits[FaultDomain.CHECK] > 0
        assert set(bits) == set(DOMAIN_ORDER)

    def test_non_uniform_stores_fewer_clean_check_bits(self):
        config = FaultModelConfig()
        ours = domain_bits(scheme_policy("non-uniform"), False, config)
        conv = domain_bits(scheme_policy("uniform-ecc"), False, config)
        assert ours[FaultDomain.CHECK] < conv[FaultDomain.CHECK]

    def test_stored_bits_average_over_state(self):
        config = FaultModelConfig()
        policy = scheme_policy("non-uniform")
        clean = stored_bits_per_line(policy, config, 0.0)
        dirty = stored_bits_per_line(policy, config, 1.0)
        mid = stored_bits_per_line(policy, config, 0.5)
        assert clean < mid < dirty
        assert mid == pytest.approx((clean + dirty) / 2)
        # Uniform ECC stores the same bits whatever the state.
        uniform = scheme_policy("uniform-ecc")
        assert stored_bits_per_line(
            uniform, config, 0.0
        ) == stored_bits_per_line(uniform, config, 1.0)


def _cfg(**kwargs):
    defaults = dict(read_fraction=1.0)
    defaults.update(kwargs)
    return FaultModelConfig(**defaults)


def _pool() -> LinePool:
    """The payload source the injectors draw pooled lines from."""
    return LinePool.shared()


class TestDataDomain:
    def test_secded_corrects_a_single_flip(self):
        out = _inject_data(
            scheme_policy("uniform-ecc"), True, 1, _cfg(), random.Random(7), _pool()
        )
        assert out is TrialOutcome.CORRECTED

    def test_parity_on_dirty_line_is_a_due(self):
        out = _inject_data(
            scheme_policy("parity-only"), True, 1, _cfg(), random.Random(7), _pool()
        )
        assert out is TrialOutcome.DUE

    def test_parity_on_clean_line_refetches(self):
        out = _inject_data(
            scheme_policy("parity-only"), False, 1, _cfg(), random.Random(7), _pool()
        )
        assert out is TrialOutcome.REFETCHED

    def test_double_bit_on_dirty_ecc_line_is_a_due(self):
        out = _inject_data(
            scheme_policy("uniform-ecc"), True, 2, _cfg(), random.Random(7), _pool()
        )
        assert out is TrialOutcome.DUE

    def test_controller_refetches_clean_detected_uncorrectable(self):
        # Same strike, both controller models: with the dirty bit
        # consulted the clean line refetches; without, it is lost.
        refetch = _inject_data(
            scheme_policy("uniform-ecc"), False, 2, _cfg(), random.Random(7), _pool()
        )
        strict = _inject_data(
            scheme_policy("uniform-ecc"), False, 2,
            _cfg(controller_refetch=False), random.Random(7), _pool(),
        )
        assert refetch is TrialOutcome.REFETCHED
        assert strict is TrialOutcome.DUE

    def test_unread_clean_line_masks_the_fault(self):
        config = _cfg(read_fraction=0.0)
        out = _inject_data(
            scheme_policy("parity-only"), False, 1, config,
            random.Random(7), _pool(),
        )
        assert out is TrialOutcome.MASKED


class TestStatusDomain:
    def test_single_flip_is_parity_detected(self):
        config = _cfg()
        assert _inject_status(
            True, 1, config, random.Random(3)
        ) is TrialOutcome.DUE
        assert _inject_status(
            False, 1, config, random.Random(3)
        ) is TrialOutcome.REFETCHED

    def test_even_flips_on_dirty_state_bits_are_silent(self):
        # 2 of 3 status bits flip: any pair includes valid or dirty,
        # so a dirty line's modified data is silently at risk.
        out = _inject_status(True, 2, _cfg(), random.Random(3))
        assert out is TrialOutcome.SDC

    def test_even_flips_on_clean_line_mask(self):
        out = _inject_status(False, 2, _cfg(), random.Random(3))
        assert out is TrialOutcome.MASKED


class TestRunTrial:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_seeded_trials_replay_exactly(self, scheme):
        policy = scheme_policy(scheme)
        config = FaultModelConfig()
        first = [
            run_trial(policy, config, random.Random(1000 + i))
            for i in range(50)
        ]
        second = [
            run_trial(policy, config, random.Random(1000 + i))
            for i in range(50)
        ]
        assert first == second

    def test_trials_cover_the_domains(self):
        rng = random.Random(0)
        policy = scheme_policy("non-uniform")
        config = FaultModelConfig()
        seen = {run_trial(policy, config, rng)[1] for _ in range(2000)}
        assert seen == set(DOMAIN_ORDER)

    def test_dirty_fraction_extremes(self):
        rng = random.Random(0)
        config = FaultModelConfig(dirty_fraction=0.0)
        policy = scheme_policy("uniform-ecc")
        assert not any(
            run_trial(policy, config, rng)[2] for _ in range(200)
        )
        config = FaultModelConfig(dirty_fraction=1.0)
        assert all(run_trial(policy, config, rng)[2] for _ in range(200))
