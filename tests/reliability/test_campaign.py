"""The campaign engine: seeding, determinism, resume, stopping, telemetry."""

import pytest

from repro.experiments.pool import SweepEngine
from repro.reliability.campaign import (
    CampaignConfig,
    CampaignEngine,
    SAMPLES_PER_SHARD,
    ShardSpec,
    run_campaign,
    run_shard,
    shard_seed,
)
from repro.reliability.checkpoint import CampaignCheckpoint, CheckpointError
from repro.reliability.model import FaultModelConfig, TrialOutcome
from repro.reliability.stopping import StoppingRule
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import EventTracer, validate_event


def _engine(jobs=1):
    return SweepEngine(jobs=jobs, cache=False, progress=False)


def _small_config(**kwargs):
    defaults = dict(
        schemes=("uniform-ecc", "non-uniform"),
        trials=600,
        trials_per_shard=100,
        seed=7,
    )
    defaults.update(kwargs)
    return CampaignConfig(**defaults)


def _aggregates(result):
    """The comparable core of a CampaignResult."""
    return {
        name: (s.trials, s.shards, dict(s.outcome_counts))
        for name, s in result.schemes.items()
    }


class TestShardSeeding:
    def test_depends_on_every_coordinate(self):
        base = shard_seed(0, "uniform-ecc", 0)
        assert base != shard_seed(1, "uniform-ecc", 0)
        assert base != shard_seed(0, "non-uniform", 0)
        assert base != shard_seed(0, "uniform-ecc", 1)

    def test_is_stable_across_processes(self):
        # A fixed value: hash randomization or platform must not move it.
        assert shard_seed(0, "uniform-ecc", 0) == shard_seed(
            0, "uniform-ecc", 0
        )
        spec = ShardSpec(
            scheme="uniform-ecc",
            index=0,
            trials=50,
            seed=shard_seed(0, "uniform-ecc", 0),
            model=FaultModelConfig(),
        )
        assert run_shard(spec).outcomes == run_shard(spec).outcomes


class TestValidation:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            CampaignConfig(schemes=())
        with pytest.raises(ValueError):
            CampaignConfig(trials=0)
        with pytest.raises(ValueError):
            CampaignConfig(trials_per_shard=0)
        with pytest.raises(ValueError):
            CampaignConfig(metric="nope")
        with pytest.raises(ValueError):
            CampaignConfig(schemes=("raid",))


class TestDeterminism:
    def test_jobs_do_not_change_the_result(self):
        config = _small_config()
        seq = run_campaign(config, engine=_engine(jobs=1))
        par = run_campaign(config, engine=_engine(jobs=2))
        assert _aggregates(seq) == _aggregates(par)

    def test_seed_changes_the_result(self):
        a = run_campaign(_small_config(seed=1), engine=_engine())
        b = run_campaign(_small_config(seed=2), engine=_engine())
        assert _aggregates(a) != _aggregates(b)

    def test_short_final_shard(self):
        config = _small_config(trials=250, trials_per_shard=100)
        result = run_campaign(config, engine=_engine())
        for s in result.schemes.values():
            assert s.trials == 250
            assert s.shards == 3
            assert s.stopped_by == "fixed"


class _InterruptingEngine(SweepEngine):
    """Delivers a KeyboardInterrupt before the Nth map_tasks call."""

    def __init__(self, interrupt_before_call: int):
        super().__init__(jobs=1, cache=False, progress=False)
        self.interrupt_before_call = interrupt_before_call
        self.calls = 0

    def map_tasks(self, func, items, phase="map"):
        self.calls += 1
        if self.calls >= self.interrupt_before_call:
            raise KeyboardInterrupt
        return super().map_tasks(func, items, phase=phase)


class TestCheckpointResume:
    def _auto_config(self):
        # Target the high-variance 'corrected' rate (~0.77) so several
        # rounds are needed — there must be a round to interrupt.
        return CampaignConfig(
            schemes=("uniform-ecc",),
            trials=None,
            trials_per_shard=100,
            shards_per_round=4,
            stopping=StoppingRule(target_half_width=0.02, min_trials=400),
            metric="corrected",
            seed=11,
        )

    def test_interrupted_resume_is_bit_identical(self, tmp_path):
        config = self._auto_config()
        baseline = run_campaign(config, engine=_engine())

        # Kill the campaign after its first round (second map call never
        # happens), then resume against the checkpoint.
        path = tmp_path / "campaign.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                config, engine=_InterruptingEngine(2), checkpoint=str(path)
            )
        resumed = run_campaign(config, engine=_engine(), checkpoint=str(path))

        assert resumed.resumed_shards == 4  # the completed first round
        assert resumed.executed_shards > 0
        assert _aggregates(resumed) == _aggregates(baseline)

    def test_fixed_mode_interrupt_keeps_completed_batches(self, tmp_path):
        # Fixed-trials campaigns run in round-sized batches so an
        # interrupt loses at most one batch, not the whole plan.
        config = _small_config(trials=800, shards_per_round=2)
        baseline = run_campaign(config, engine=_engine())

        path = tmp_path / "campaign.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                config, engine=_InterruptingEngine(3), checkpoint=str(path)
            )
        resumed = run_campaign(config, engine=_engine(), checkpoint=str(path))

        # Two batches of shards_per_round * n_schemes = 4 shards each
        # completed before the interrupt.
        assert resumed.resumed_shards == 8
        assert resumed.executed_shards == 8
        assert _aggregates(resumed) == _aggregates(baseline)

    def test_truncated_checkpoint_resumes_bit_identical(self, tmp_path):
        config = self._auto_config()
        path = tmp_path / "campaign.jsonl"
        baseline = run_campaign(config, engine=_engine(), checkpoint=str(path))

        # Simulate a SIGKILL mid-append: keep the header + 2 shards and
        # a torn fragment of the third.
        lines = path.read_text().splitlines()
        assert len(lines) >= 4
        path.write_text("\n".join(lines[:3]) + "\n" + lines[3][:17])
        resumed = run_campaign(config, engine=_engine(), checkpoint=str(path))

        assert resumed.resumed_shards == 2
        assert _aggregates(resumed) == _aggregates(baseline)

    def test_completed_checkpoint_replays_without_work(self, tmp_path):
        config = self._auto_config()
        path = tmp_path / "campaign.jsonl"
        first = run_campaign(config, engine=_engine(), checkpoint=str(path))
        again = run_campaign(config, engine=_engine(), checkpoint=str(path))
        assert again.executed_shards == 0
        assert again.resumed_shards == first.resumed_shards + (
            first.executed_shards
        )
        assert _aggregates(again) == _aggregates(first)

    def test_changed_config_refuses_the_checkpoint(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_campaign(
            _small_config(trials=200), engine=_engine(), checkpoint=str(path)
        )
        with pytest.raises(CheckpointError):
            run_campaign(
                _small_config(trials=200, seed=99),
                engine=_engine(),
                checkpoint=str(path),
            )

    def test_fit_knobs_do_not_invalidate_the_checkpoint(self, tmp_path):
        # raw_fit / n_lines only rescale the report; a checkpoint from
        # one quoting convention must resume under another.
        path = tmp_path / "campaign.jsonl"
        a = run_campaign(
            _small_config(trials=200), engine=_engine(), checkpoint=str(path)
        )
        b = run_campaign(
            _small_config(trials=200, raw_fit_per_mbit=500.0, n_lines=8192),
            engine=_engine(),
            checkpoint=str(path),
        )
        assert b.executed_shards == 0
        assert _aggregates(a) == _aggregates(b)


class TestAutoStopping:
    def test_stops_at_a_round_boundary_with_target_met(self):
        config = CampaignConfig(
            schemes=("uniform-ecc",),
            trials=None,
            trials_per_shard=100,
            shards_per_round=4,
            stopping=StoppingRule(target_half_width=0.05, min_trials=400),
            seed=3,
        )
        result = run_campaign(config, engine=_engine())
        s = result.schemes["uniform-ecc"]
        assert s.stopped_by == "target"
        assert s.trials % (100 * 4) == 0  # whole rounds only
        assert s.half_width <= 0.05

    def test_budget_stop(self):
        config = CampaignConfig(
            schemes=("parity-only",),
            trials=None,
            trials_per_shard=50,
            shards_per_round=2,
            # due rate ~0.5: +-0.005 needs ~40k trials, budget cuts in.
            stopping=StoppingRule(
                target_half_width=0.005, min_trials=100, max_trials=300
            ),
            metric="due",
            seed=3,
        )
        result = run_campaign(config, engine=_engine())
        s = result.schemes["parity-only"]
        assert s.stopped_by == "budget"
        assert s.trials == 300

    def test_failure_metric_counts_sdc_and_due(self):
        config = _small_config(metric="failure", trials=200)
        counts = {TrialOutcome.SDC: 3, TrialOutcome.DUE: 4,
                  TrialOutcome.MASKED: 5}
        assert config.metric_successes(counts) == 7


class TestTelemetry:
    def test_counters_and_events(self):
        tracer = EventTracer()
        registry = MetricsRegistry()
        config = _small_config(trials=200, schemes=("uniform-ecc",))
        result = run_campaign(
            config, engine=_engine(), tracer=tracer, registry=registry
        )
        s = result.schemes["uniform-ecc"]
        snapshot = registry.snapshot()["metrics"]
        assert snapshot["campaign.uniform-ecc.trials"] == 200
        assert snapshot["campaign.uniform-ecc.shards"] == s.shards
        for outcome, n in s.outcome_counts.items():
            assert snapshot[f"campaign.uniform-ecc.{outcome.value}"] == n

        events = tracer.events()
        assert len(events) == s.shards * min(SAMPLES_PER_SHARD, 100)
        for event in events:
            validate_event(event)
            assert event["scheme"] == "uniform-ecc"

    def test_estimate_matches_counts(self):
        config = _small_config(trials=400)
        result = run_campaign(config, engine=_engine())
        for s in result.schemes.values():
            e = s.estimate
            assert e.trials == s.trials
            assert sum(r.successes for r in e.rates.values()) == s.trials
            failures = s.outcome_counts.get(
                TrialOutcome.SDC, 0
            ) + s.outcome_counts.get(TrialOutcome.DUE, 0)
            assert e.avf.successes == failures
            # FIT scales the conditional rates linearly.
            assert e.fit_sdc[0] == pytest.approx(
                e.strike_fit * e.rates[TrialOutcome.SDC].value
            )


class TestCampaignEngineWiring:
    def test_accepts_checkpoint_instance(self, tmp_path):
        ckpt = CampaignCheckpoint(tmp_path / "c.jsonl")
        engine = CampaignEngine(
            _small_config(trials=100), engine=_engine(), checkpoint=ckpt
        )
        result = engine.run()
        assert result.total_trials == 200  # 100 per scheme
        assert (tmp_path / "c.jsonl").exists()
