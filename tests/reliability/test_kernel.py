"""The batched kernel: table codecs, pooled lines, exact stream parity.

The contract under test is stronger than "same distribution": under one
shard seed the batch kernel must consume the identical Mersenne-Twister
stream as the reference per-trial path and produce identical per-trial
outcomes — that is what makes ``--kernel`` a speed knob rather than a
results knob, and what keeps checkpoints kernel-portable.
"""

import random
import time

import pytest

from repro.ecc.hamming import (
    SYNDROME_TABLES,
    SecDedCodec,
    _encode_reference,
    encode_word,
)
from repro.ecc.parity import BYTE_PARITY, _parity64
from repro.reliability.campaign import (
    CampaignConfig,
    ShardSpec,
    run_campaign,
    run_shard,
    shard_seed,
)
from repro.reliability.kernel import (
    POOL_SIZE,
    LinePool,
    run_trials_batch,
)
from repro.reliability.model import (
    SCHEMES,
    FaultModelConfig,
    run_trial,
    scheme_policy,
)
from repro.experiments.pool import SweepEngine


def _engine(jobs=1):
    return SweepEngine(jobs=jobs, cache=False, progress=False)


class _InterruptingEngine(SweepEngine):
    """Delivers a KeyboardInterrupt before the Nth map_tasks call."""

    def __init__(self, interrupt_before_call: int):
        super().__init__(jobs=1, cache=False, progress=False)
        self.interrupt_before_call = interrupt_before_call
        self.calls = 0

    def map_tasks(self, func, items, phase="map"):
        self.calls += 1
        if self.calls >= self.interrupt_before_call:
            raise KeyboardInterrupt
        return super().map_tasks(func, items, phase=phase)


def _reference_shard(policy, config, n, rng, pool, sample_limit=0):
    """The reference per-trial loop in run_shard's aggregation shape."""
    outcomes = {}
    samples = []
    for trial in range(n):
        outcome, domain, dirty = run_trial(policy, config, rng, pool)
        per_domain = outcomes.setdefault(domain.value, {})
        per_domain[outcome.value] = per_domain.get(outcome.value, 0) + 1
        if len(samples) < sample_limit:
            samples.append((trial, domain.value, dirty, outcome.value))
    return outcomes, samples


class TestTableCodecs:
    """The lookup tables are exactly the loop-based codecs, tabulated."""

    def test_syndrome_tables_are_the_reference_encode_per_byte(self):
        for k in range(8):
            for value in (0, 1, 0x55, 0xAA, 0xFF):
                assert SYNDROME_TABLES[k][value] == _encode_reference(
                    value << (8 * k)
                )

    def test_encode_word_matches_reference_encode(self):
        rng = random.Random(0xC0DE)
        words = [0, 1, 1 << 63, (1 << 64) - 1]
        words += [rng.getrandbits(64) for _ in range(200)]
        for word in words:
            assert encode_word(word) == _encode_reference(word)

    def test_codec_still_round_trips_through_the_tables(self):
        codec = SecDedCodec()
        rng = random.Random(3)
        for _ in range(50):
            word = rng.getrandbits(64)
            check = codec.encode(word)
            corrupted = word ^ (1 << rng.randrange(64))
            result = codec.check(corrupted, check)
            assert result.outcome.name == "CORRECTED"
            assert result.data == word

    def test_byte_parity_table_matches_parity64(self):
        assert len(BYTE_PARITY) == 256
        for value in range(256):
            assert BYTE_PARITY[value] == _parity64(value)


class TestLinePool:
    def test_contents_are_deterministic_across_instances(self):
        a, b = LinePool(), LinePool()
        assert a.payload == b.payload
        assert a.parity == b.parity
        assert a.ecc == b.ecc

    def test_check_bytes_encode_the_pooled_payloads(self):
        pool = LinePool(size=4)
        codec = SecDedCodec()
        for j in range(4 * pool.words_per_line):
            word = int.from_bytes(pool.payload[j * 8 : j * 8 + 8], "little")
            assert pool.parity[j] == _parity64(word)
            assert pool.ecc[j] == codec.encode(word)

    def test_shared_is_memoised_per_shape(self):
        assert LinePool.shared() is LinePool.shared()
        assert LinePool.shared() is LinePool.shared(64, POOL_SIZE)
        assert LinePool.shared(32) is not LinePool.shared()

    def test_payload_bytes_bounds(self):
        pool = LinePool(size=2)
        assert len(pool.payload_bytes(1)) == pool.line_bytes
        with pytest.raises(IndexError):
            pool.payload_bytes(2)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            LinePool(line_bytes=60)
        with pytest.raises(ValueError):
            LinePool(size=0)

    def test_batch_rejects_mismatched_pool(self):
        with pytest.raises(ValueError):
            run_trials_batch(
                scheme_policy("uniform-ecc"),
                FaultModelConfig(),
                1,
                random.Random(0),
                pool=LinePool(line_bytes=32),
            )


class TestStreamParity:
    """Batch and reference kernels: same stream, same per-trial outcomes."""

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_outcomes_samples_and_final_rng_state_match(self, scheme):
        policy = scheme_policy(scheme)
        config = FaultModelConfig()
        pool = LinePool.shared()
        rng_ref = random.Random(20060301)
        rng_batch = random.Random(20060301)
        ref = _reference_shard(
            policy, config, 2000, rng_ref, pool, sample_limit=64
        )
        batch = run_trials_batch(
            policy, config, 2000, rng_batch, pool=pool, sample_limit=64
        )
        assert batch == ref
        # The strongest form of the contract: not one extra or missing
        # random draw anywhere across 2000 trials.
        assert rng_batch.getstate() == rng_ref.getstate()

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("dirty_fraction", [0.0, 1.0])
    @pytest.mark.parametrize("double_bit_fraction", [0.0, 1.0])
    @pytest.mark.parametrize("controller_refetch", [False, True])
    def test_every_forced_cell_matches(
        self, scheme, dirty_fraction, double_bit_fraction, controller_refetch
    ):
        # Forcing state and multiplicity to their corners walks every
        # (scheme, domain, dirty, flips) branch pair of both kernels.
        policy = scheme_policy(scheme)
        config = FaultModelConfig(
            dirty_fraction=dirty_fraction,
            double_bit_fraction=double_bit_fraction,
            controller_refetch=controller_refetch,
        )
        pool = LinePool.shared()
        rng_ref = random.Random(99)
        rng_batch = random.Random(99)
        ref = _reference_shard(policy, config, 600, rng_ref, pool)
        batch = run_trials_batch(policy, config, 600, rng_batch, pool=pool)
        assert batch == ref
        assert rng_batch.getstate() == rng_ref.getstate()

    def test_run_shard_kernels_are_interchangeable(self):
        for scheme in sorted(SCHEMES):
            spec = ShardSpec(
                scheme=scheme,
                index=3,
                trials=800,
                seed=shard_seed(11, scheme, 3),
                model=FaultModelConfig(),
                kernel="batch",
            )
            batch = run_shard(spec)
            reference = run_shard(
                ShardSpec(**dict(vars(spec), kernel="reference"))
            )
            assert batch.outcomes == reference.outcomes
            assert batch.samples == reference.samples


class TestCampaignKernels:
    def _config(self, **kwargs):
        defaults = dict(
            schemes=("uniform-ecc", "non-uniform", "parity-only"),
            trials=900,
            trials_per_shard=150,
            seed=5,
        )
        defaults.update(kwargs)
        return CampaignConfig(**defaults)

    @staticmethod
    def _aggregates(result):
        return {
            name: (s.trials, s.shards, dict(s.outcome_counts))
            for name, s in result.schemes.items()
        }

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            CampaignConfig(kernel="turbo")

    def test_campaign_aggregates_match_across_kernels(self):
        batch = run_campaign(self._config(kernel="batch"), engine=_engine())
        ref = run_campaign(
            self._config(kernel="reference"), engine=_engine()
        )
        assert self._aggregates(batch) == self._aggregates(ref)

    def test_batch_kernel_is_jobs_invariant(self):
        serial = run_campaign(self._config(), engine=_engine(jobs=1))
        parallel = run_campaign(self._config(), engine=_engine(jobs=2))
        assert self._aggregates(serial) == self._aggregates(parallel)

    def test_checkpoints_are_kernel_portable(self, tmp_path):
        # A checkpoint written under the reference kernel must resume
        # under the batch kernel bit-identically (and vice versa): the
        # kernel is excluded from the digest because shard results are
        # kernel-independent.
        path = tmp_path / "campaign.jsonl"
        interrupter = _InterruptingEngine(2)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                self._config(kernel="reference", shards_per_round=2),
                engine=interrupter,
                checkpoint=str(path),
            )
        resumed = run_campaign(
            self._config(kernel="batch", shards_per_round=2),
            engine=_engine(),
            checkpoint=str(path),
        )
        assert resumed.resumed_shards > 0
        assert resumed.executed_shards > 0
        uninterrupted = run_campaign(
            self._config(shards_per_round=2), engine=_engine()
        )
        assert self._aggregates(resumed) == self._aggregates(uninterrupted)


@pytest.mark.slow
class TestThroughput:
    def test_batch_kernel_is_much_faster_than_reference(self):
        # The CI gate (scripts/check_bench.py) pins >=10x on a quiet
        # benchmark run; this in-suite sanity bound is looser so noisy
        # test machines don't flake.
        policy = scheme_policy("non-uniform")
        config = FaultModelConfig()
        pool = LinePool.shared()
        n = 20000
        start = time.perf_counter()
        _reference_shard(policy, config, n, random.Random(1), pool)
        reference_s = time.perf_counter() - start
        start = time.perf_counter()
        run_trials_batch(policy, config, n, random.Random(1), pool=pool)
        batch_s = time.perf_counter() - start
        assert batch_s * 4 < reference_s
