"""FIT / MTTF / AVF arithmetic."""

import pytest

from repro.reliability.estimates import (
    HOURS_PER_BILLION,
    fit_to_mttf_hours,
    mttf_interval,
    rate_estimate,
    scheme_estimate,
)
from repro.reliability.model import (
    FaultModelConfig,
    TrialOutcome,
    scheme_policy,
    stored_bits_per_line,
)


def test_rate_estimate_carries_its_interval():
    r = rate_estimate(10, 1000)
    assert r.value == 0.01
    assert r.lo < 0.01 < r.hi
    assert r.half_width == pytest.approx((r.hi - r.lo) / 2)
    v, lo, hi = r.scaled(100.0)
    assert (v, lo, hi) == (r.value * 100, r.lo * 100, r.hi * 100)


def test_fit_to_mttf():
    assert fit_to_mttf_hours(1000.0) == HOURS_PER_BILLION / 1000.0
    assert fit_to_mttf_hours(0.0) == float("inf")


def test_scheme_estimate_arithmetic():
    model = FaultModelConfig(dirty_fraction=0.5)
    policy = scheme_policy("uniform-ecc")
    counts = {
        TrialOutcome.MASKED: 700,
        TrialOutcome.CORRECTED: 200,
        TrialOutcome.DUE: 80,
        TrialOutcome.SDC: 20,
    }
    est = scheme_estimate(
        "uniform-ecc", policy, model, counts,
        n_lines=1000, raw_fit_per_mbit=1000.0,
    )
    assert est.trials == 1000
    assert est.avf.value == pytest.approx(0.1)

    bits = 1000 * stored_bits_per_line(policy, model, 0.5)
    assert est.total_bits == pytest.approx(bits)
    assert est.strike_fit == pytest.approx(1000.0 * bits / (1 << 20))
    assert est.fit_sdc[0] == pytest.approx(est.strike_fit * 0.02)
    assert est.fit_due[0] == pytest.approx(est.strike_fit * 0.08)

    # MTTF comes from total failure FIT, bounds anti-ordered (FIT hi
    # gives MTTF lo).
    fit_total = est.strike_fit * est.avf.value
    assert est.mttf_hours[0] == pytest.approx(HOURS_PER_BILLION / fit_total)
    assert est.mttf_hours[1] <= est.mttf_hours[0] <= est.mttf_hours[2]


def test_zero_failures_give_infinite_mttf():
    model = FaultModelConfig()
    est = scheme_estimate(
        "uniform-ecc",
        scheme_policy("uniform-ecc"),
        model,
        {TrialOutcome.MASKED: 100},
        n_lines=100,
    )
    assert est.mttf_hours[0] == float("inf")
    assert est.mttf_hours[1] < float("inf")  # the Wilson hi bound is > 0
    value, lo, hi = est.mttf_hours
    assert lo <= value <= hi


def test_mttf_interval_swaps_the_fit_bounds():
    value, lo, hi = mttf_interval((100.0, 50.0, 200.0))
    assert value == HOURS_PER_BILLION / 100.0
    assert lo == HOURS_PER_BILLION / 200.0  # FIT hi -> MTTF lo
    assert hi == HOURS_PER_BILLION / 50.0  # FIT lo -> MTTF hi
    assert lo <= value <= hi


def test_mttf_interval_zero_fit_edges():
    # Zero observed failures: point estimate and upper bound are both
    # the inf convention; only the lower bound (from the Wilson hi on
    # the failure rate) stays finite.
    value, lo, hi = mttf_interval((0.0, 0.0, 25.0))
    assert value == hi == float("inf")
    assert lo == HOURS_PER_BILLION / 25.0
    assert lo <= value <= hi
    # Fully degenerate (e.g. zero trials): everything is inf, and the
    # invariant still holds rather than producing inf < inf confusion.
    value, lo, hi = mttf_interval((0.0, 0.0, 0.0))
    assert value == lo == hi == float("inf")
    assert lo <= value <= hi


def test_scheme_estimate_with_zero_trials_is_degenerate_not_broken():
    model = FaultModelConfig()
    est = scheme_estimate(
        "parity-only", scheme_policy("parity-only"), model, {}, n_lines=16
    )
    assert est.trials == 0
    assert est.avf.value == 0.0
    assert (est.avf.lo, est.avf.hi) == (0.0, 1.0)  # uninformative
    value, lo, hi = est.mttf_hours
    assert value == float("inf")
    assert lo <= value <= hi
    assert lo > 0.0  # finite: the strike rate bounds it


def test_scheme_estimate_all_failures_keeps_the_invariant():
    model = FaultModelConfig()
    est = scheme_estimate(
        "parity-only",
        scheme_policy("parity-only"),
        model,
        {TrialOutcome.SDC: 50},
        n_lines=1000,
    )
    assert est.avf.value == 1.0
    value, lo, hi = est.mttf_hours
    assert 0.0 < lo <= value <= hi < float("inf")


def test_scheme_estimate_zero_raw_fit_gives_all_inf_mttf():
    # raw_fit 0 collapses every FIT to 0; the interval must stay
    # ordered (inf, inf, inf), not invert.
    est = scheme_estimate(
        "uniform-ecc",
        scheme_policy("uniform-ecc"),
        FaultModelConfig(),
        {TrialOutcome.SDC: 5, TrialOutcome.MASKED: 95},
        n_lines=100,
        raw_fit_per_mbit=0.0,
    )
    value, lo, hi = est.mttf_hours
    assert value == lo == hi == float("inf")
    assert lo <= value <= hi
