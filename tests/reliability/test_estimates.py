"""FIT / MTTF / AVF arithmetic."""

import pytest

from repro.reliability.estimates import (
    HOURS_PER_BILLION,
    fit_to_mttf_hours,
    rate_estimate,
    scheme_estimate,
)
from repro.reliability.model import (
    FaultModelConfig,
    TrialOutcome,
    scheme_policy,
    stored_bits_per_line,
)


def test_rate_estimate_carries_its_interval():
    r = rate_estimate(10, 1000)
    assert r.value == 0.01
    assert r.lo < 0.01 < r.hi
    assert r.half_width == pytest.approx((r.hi - r.lo) / 2)
    v, lo, hi = r.scaled(100.0)
    assert (v, lo, hi) == (r.value * 100, r.lo * 100, r.hi * 100)


def test_fit_to_mttf():
    assert fit_to_mttf_hours(1000.0) == HOURS_PER_BILLION / 1000.0
    assert fit_to_mttf_hours(0.0) == float("inf")


def test_scheme_estimate_arithmetic():
    model = FaultModelConfig(dirty_fraction=0.5)
    policy = scheme_policy("uniform-ecc")
    counts = {
        TrialOutcome.MASKED: 700,
        TrialOutcome.CORRECTED: 200,
        TrialOutcome.DUE: 80,
        TrialOutcome.SDC: 20,
    }
    est = scheme_estimate(
        "uniform-ecc", policy, model, counts,
        n_lines=1000, raw_fit_per_mbit=1000.0,
    )
    assert est.trials == 1000
    assert est.avf.value == pytest.approx(0.1)

    bits = 1000 * stored_bits_per_line(policy, model, 0.5)
    assert est.total_bits == pytest.approx(bits)
    assert est.strike_fit == pytest.approx(1000.0 * bits / (1 << 20))
    assert est.fit_sdc[0] == pytest.approx(est.strike_fit * 0.02)
    assert est.fit_due[0] == pytest.approx(est.strike_fit * 0.08)

    # MTTF comes from total failure FIT, bounds anti-ordered (FIT hi
    # gives MTTF lo).
    fit_total = est.strike_fit * est.avf.value
    assert est.mttf_hours[0] == pytest.approx(HOURS_PER_BILLION / fit_total)
    assert est.mttf_hours[1] <= est.mttf_hours[0] <= est.mttf_hours[2]


def test_zero_failures_give_infinite_mttf():
    model = FaultModelConfig()
    est = scheme_estimate(
        "uniform-ecc",
        scheme_policy("uniform-ecc"),
        model,
        {TrialOutcome.MASKED: 100},
        n_lines=100,
    )
    assert est.mttf_hours[0] == float("inf")
    assert est.mttf_hours[1] < float("inf")  # the Wilson hi bound is > 0
