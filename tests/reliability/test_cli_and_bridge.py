"""The ``repro reliability`` verb and the experiments bridge."""

import pytest

from repro.cli import main
from repro.experiments.pool import SweepEngine
from repro.experiments.reliability import (
    benchmark_campaigns,
    measured_dirty_fractions,
)
from repro.experiments.report import render_campaign, render_campaign_comparison
from repro.experiments.runner import RunConfig
from repro.reliability import CampaignConfig, run_campaign


def _cli(capsys, *argv):
    rc = main(["reliability", *argv])
    return rc, capsys.readouterr().out


QUICK = ("--trials", "200", "--trials-per-shard", "50")


def test_cli_fixed_campaign(capsys):
    rc, out = _cli(capsys, *QUICK)
    assert rc == 0
    assert "Reliability campaign" in out
    assert "uniform-ecc" in out and "non-uniform" in out
    assert "MTTF" in out and "fixed" in out


def test_cli_auto_campaign_reaches_the_target(capsys):
    rc, out = _cli(
        capsys, "--trials", "auto", "--target", "0.05",
        "--trials-per-shard", "100", "--shards-per-round", "4",
    )
    assert rc == 0
    assert "±0.05 on sdc" in out
    assert "target" in out


def test_cli_checkpoint_resume(tmp_path, capsys):
    path = str(tmp_path / "c.jsonl")
    rc, first = _cli(capsys, *QUICK, "--checkpoint", path)
    assert rc == 0
    assert "0 / 8" in first  # 4 shards x 2 schemes, none resumed
    rc, second = _cli(capsys, *QUICK, "--checkpoint", path)
    assert rc == 0
    assert "8 / 0" in second  # fully replayed, nothing executed


def test_cli_checkpoint_config_mismatch_exits(tmp_path, capsys):
    path = str(tmp_path / "c.jsonl")
    assert _cli(capsys, *QUICK, "--checkpoint", path)[0] == 0
    with pytest.raises(SystemExit, match="configuration changed"):
        main(["reliability", "--trials", "400", "--trials-per-shard", "50",
              "--checkpoint", path])


def test_cli_rejects_bad_trials():
    with pytest.raises(SystemExit):
        main(["reliability", "--trials", "-3"])
    with pytest.raises(SystemExit):
        main(["reliability", "--trials", "sometimes"])


def test_cli_rejects_unknown_kernel(capsys):
    # Facade-level validation: exit 2 with the backend listing, not an
    # argparse usage error and not a traceback mid-campaign.
    rc = main(["reliability", "--kernel", "turbo", *QUICK])
    captured = capsys.readouterr()
    assert rc == 2
    assert "error:" in captured.err
    assert "available backends: batch, reference, vector" in captured.err


def test_cli_rejects_unknown_scenario(capsys):
    rc = main(["reliability", "--scenario", "bogus", *QUICK])
    captured = capsys.readouterr()
    assert rc == 2
    assert "error:" in captured.err
    assert (
        "available scenarios: nominal, burst-heavy, low-voltage, rowcol"
        in captured.err
    )


def test_cli_rejects_unknown_codec(capsys):
    rc = main(["reliability", "--codec", "turbo", *QUICK])
    captured = capsys.readouterr()
    assert rc == 2
    assert "error:" in captured.err
    assert (
        "available codecs: dected, interleaved-parity, parity, "
        "rs-symbol, secded" in captured.err
    )


def test_cli_help_enumerates_scenarios_and_codecs(capsys):
    with pytest.raises(SystemExit):
        main(["reliability", "--help"])
    out = " ".join(capsys.readouterr().out.split())  # undo argparse wrap
    assert "nominal, burst-heavy, low-voltage, rowcol" in out
    assert "dected" in out and "rs-symbol" in out


def test_cli_scenario_campaign_end_to_end(capsys):
    rc, out = _cli(
        capsys, *QUICK, "--scenario", "burst-heavy", "--codec", "dected"
    )
    assert rc == 0
    assert "Reliability campaign" in out
    assert "burst-heavy" in out  # settings table names the scenario
    assert "dected" in out


def test_cli_nominal_hides_scenario_rows(capsys):
    rc, out = _cli(capsys, *QUICK)
    assert rc == 0
    assert "scenario" not in out  # default settings stay unchanged


def test_cli_vector_kernel_end_to_end(capsys):
    pytest.importorskip("numpy")
    rc, out = _cli(capsys, *QUICK, "--kernel", "vector")
    assert rc == 0
    assert "Reliability campaign" in out
    assert "uniform-ecc" in out and "non-uniform" in out


def test_cli_vector_without_numpy_exits_2(monkeypatch, capsys):
    from repro.reliability import vector

    monkeypatch.setattr(vector, "HAVE_NUMPY", False)
    rc = main(["reliability", "--kernel", "vector", *QUICK])
    captured = capsys.readouterr()
    assert rc == 2
    assert "error:" in captured.err
    assert "pip install -e .[fast]" in captured.err


def test_cli_trace_export(tmp_path, capsys):
    out_path = tmp_path / "trace.jsonl"
    rc, out = _cli(capsys, *QUICK, "--trace-out", str(out_path))
    assert rc == 0
    assert out_path.exists()
    assert "campaign_outcome" in out


_RUN = RunConfig(n_refs=4000, warmup_refs=1000)


def test_measured_dirty_fractions():
    fractions = measured_dirty_fractions("mesa", _RUN)
    assert set(fractions) == {"uniform-ecc", "parity-only", "non-uniform"}
    assert fractions["uniform-ecc"] == fractions["parity-only"]
    for value in fractions.values():
        assert 0.0 <= value <= 1.0
    # Cleaning + ECC eviction keep the protected cache cleaner.
    assert fractions["non-uniform"] < fractions["uniform-ecc"]


def test_benchmark_campaigns_and_rendering(tmp_path):
    engine = SweepEngine(jobs=1, cache=False, progress=False)
    results = benchmark_campaigns(
        ["mesa"],
        run_config=_RUN,
        campaign_config=CampaignConfig(trials=200, trials_per_shard=100),
        engine=engine,
        checkpoint_dir=str(tmp_path),
    )
    assert set(results) == {"mesa"}
    assert (tmp_path / "mesa.jsonl").exists()
    result = results["mesa"]
    # The measured fractions were substituted in.
    assert result.config.dirty_fractions is not None

    table = render_campaign(result, title="campaign")
    assert "uniform-ecc" in table and "±" in table
    comparison = render_campaign_comparison(results)
    assert "mesa" in comparison and "non-uniform avf" in comparison


def test_run_campaign_defaults_need_no_engine():
    result = run_campaign(CampaignConfig(trials=100, trials_per_shard=100))
    assert result.total_trials == 200
