"""JSONL checkpoint durability and refusal semantics."""

import json

import pytest

from repro.reliability.checkpoint import (
    CHECKPOINT_VERSION,
    CampaignCheckpoint,
    CheckpointError,
    config_digest,
)


def _shard(scheme="uniform-ecc", index=0, trials=10):
    return {
        "scheme": scheme,
        "index": index,
        "trials": trials,
        "seed": 42,
        "outcomes": {"data": {"masked": trials}},
    }


def test_digest_is_canonical():
    a = config_digest({"x": 1, "y": [1, 2]})
    b = config_digest({"y": [1, 2], "x": 1})  # key order irrelevant
    c = config_digest({"x": 2, "y": [1, 2]})
    assert a == b != c


def test_missing_file_loads_empty(tmp_path):
    ckpt = CampaignCheckpoint(tmp_path / "none.jsonl")
    assert ckpt.load("whatever") == {}


def test_roundtrip(tmp_path):
    digest = config_digest({"seed": 0})
    with CampaignCheckpoint(tmp_path / "c.jsonl") as ckpt:
        ckpt.write_header(digest, {"seed": 0})
        ckpt.append_shard(_shard(index=0))
        ckpt.append_shard(_shard(index=1, scheme="non-uniform"))
    done = CampaignCheckpoint(tmp_path / "c.jsonl").load(digest)
    assert set(done) == {("uniform-ecc", 0), ("non-uniform", 1)}
    assert done[("uniform-ecc", 0)]["trials"] == 10


def test_header_written_once(tmp_path):
    digest = config_digest({})
    path = tmp_path / "c.jsonl"
    for _ in range(2):
        with CampaignCheckpoint(path) as ckpt:
            ckpt.write_header(digest, {})
    lines = path.read_text().splitlines()
    assert len(lines) == 1


def test_torn_final_line_is_skipped(tmp_path):
    digest = config_digest({})
    path = tmp_path / "c.jsonl"
    with CampaignCheckpoint(path) as ckpt:
        ckpt.write_header(digest, {})
        ckpt.append_shard(_shard(index=0))
    with open(path, "a") as fh:
        fh.write('{"scheme": "uniform-ecc", "index": 1, "tr')  # killed here
    done = CampaignCheckpoint(path).load(digest)
    assert set(done) == {("uniform-ecc", 0)}


def test_malformed_interior_line_is_an_error(tmp_path):
    digest = config_digest({})
    path = tmp_path / "c.jsonl"
    with CampaignCheckpoint(path) as ckpt:
        ckpt.write_header(digest, {})
    with open(path, "a") as fh:
        fh.write("not json\n")
        fh.write(json.dumps(dict(_shard(), type="shard")) + "\n")
    with pytest.raises(CheckpointError, match="malformed"):
        CampaignCheckpoint(path).load(digest)


def test_digest_mismatch_refuses_to_resume(tmp_path):
    path = tmp_path / "c.jsonl"
    with CampaignCheckpoint(path) as ckpt:
        ckpt.write_header(config_digest({"seed": 0}), {"seed": 0})
    with pytest.raises(CheckpointError, match="configuration changed"):
        CampaignCheckpoint(path).load(config_digest({"seed": 1}))


def test_version_mismatch_refuses_to_resume(tmp_path):
    path = tmp_path / "c.jsonl"
    header = {
        "type": "header",
        "version": CHECKPOINT_VERSION + 1,
        "digest": "d",
    }
    path.write_text(json.dumps(header) + "\n")
    with pytest.raises(CheckpointError, match="version"):
        CampaignCheckpoint(path).load("d")


def test_missing_header_is_an_error(tmp_path):
    path = tmp_path / "c.jsonl"
    path.write_text(json.dumps(dict(_shard(), type="shard")) + "\n")
    with pytest.raises(CheckpointError, match="header"):
        CampaignCheckpoint(path).load("d")
