"""The vectorized kernel: exact tables, distributional equivalence.

The vector kernel's contract is split (see ``repro.reliability.vector``):

* the *deterministic* part — classifying a given (state, domain, error
  pattern) — must be **exact**: every outcome-table entry is pinned
  here against the real codec machinery (``LineProtection.access`` /
  ``ProtectedTag``), enumerating all single and double flips;
* the *sampling* part cannot be stream-compatible with the
  Mersenne-Twister kernels, so vector-vs-batch agreement is enforced
  **distributionally**: per-(domain, outcome) rates over a forced
  corner grid must agree within a two-proportion z bound.
"""

import random

import pytest

from repro import api
from repro.core.policy import LineProtection, RecoveryAction
from repro.experiments.pool import SweepEngine
from repro.reliability import vector
from repro.reliability.campaign import (
    CampaignConfig,
    ShardSpec,
    run_campaign,
    run_shard,
    shard_seed,
)
from repro.reliability.kernel import LinePool, run_trials_batch
from repro.reliability.model import (
    SCHEMES,
    FaultModelConfig,
    TrialOutcome,
    _ACTION_TO_OUTCOME,
    _inject_status,
    _inject_tag,
    scheme_policy,
)
from repro.reliability.stopping import two_proportion_z
from repro.reliability.vector import (
    HAVE_NUMPY,
    OUTCOME_ORDER,
    run_trials_vector,
)

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy not installed (the [fast] extra)"
)

#: |z| bound of the distribution gate.  With 8000 trials per kernel a
#: systematic per-outcome rate error of ~6% trips it, while the false
#: positive probability per comparison is ~6e-7 — effectively flake-free
#: across the whole corner grid.
Z_BOUND = 5.0
GATE_TRIALS = 8000


def _classify(line, dirty, config):
    """The reference controller read: ``model._observe`` sans read roll."""
    action, _ = line.access()
    if (
        config.controller_refetch
        and not dirty
        and action is RecoveryAction.DATA_LOSS
    ):
        return TrialOutcome.REFETCHED
    return _ACTION_TO_OUTCOME[action]


def _line(policy, dirty, config, payload):
    line = LineProtection(policy, payload, line_bytes=config.line_bytes)
    if dirty:
        line.write(payload)
    return line


def _flat(outcomes):
    return {
        (domain, outcome): count
        for domain, per in outcomes.items()
        for outcome, count in per.items()
    }


@needs_numpy
class TestOutcomeTablesExact:
    """Enumerated flips: tables == the real codecs, payload independent."""

    configs = [
        FaultModelConfig(),
        FaultModelConfig(controller_refetch=False),
    ]

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("dirty", [False, True])
    def test_data_single_flip_table(self, scheme, dirty):
        policy = scheme_policy(scheme)
        pool = LinePool.shared()
        for config in self.configs:
            plan = vector._vector_plan(policy, config)
            for payload_idx in (0, 1):  # outcomes are payload independent
                payload = pool.payload_bytes(payload_idx)
                for p in range(64):
                    line = _line(policy, dirty, config, payload)
                    line.flip(p // 8, p % 8)  # bit p of word 0
                    assert (
                        OUTCOME_ORDER[plan.data1[int(dirty), p]]
                        is _classify(line, dirty, config)
                    ), f"{scheme} dirty={dirty} p={p}"

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("dirty", [False, True])
    def test_data_double_flip_table(self, scheme, dirty):
        # All unordered position pairs within one codeword (the table is
        # symmetric and its diagonal is the cancelled-strike case, both
        # asserted below) against the real line decode.
        policy = scheme_policy(scheme)
        config = FaultModelConfig()
        plan = vector._vector_plan(policy, config)
        payload = LinePool.shared().payload_bytes(2)
        di = int(dirty)
        for p1 in range(64):
            for p2 in range(p1 + 1, 64):
                line = _line(policy, dirty, config, payload)
                line.flip(p1 // 8, p1 % 8)
                line.flip(p2 // 8, p2 % 8)
                assert (
                    OUTCOME_ORDER[plan.data2[di, p1, p2]]
                    is _classify(line, dirty, config)
                ), f"{scheme} dirty={dirty} pair=({p1},{p2})"

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("dirty", [False, True])
    def test_data_double_table_symmetry_and_diagonal(self, scheme, dirty):
        np = pytest.importorskip("numpy")
        table = vector._vector_plan(
            scheme_policy(scheme), FaultModelConfig()
        ).data2[int(dirty)]
        assert np.array_equal(table, table.T)
        # p2 == p1: the second upset cancels the first — never observed.
        assert OUTCOME_ORDER[table[17, 17]] is TrialOutcome.MASKED
        assert np.array_equal(np.diag(table), np.full(64, table[0, 0]))

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("dirty", [False, True])
    def test_check_column_tables(self, scheme, dirty):
        policy = scheme_policy(scheme)
        config = FaultModelConfig()
        plan = vector._vector_plan(policy, config)
        payload = LinePool.shared().payload_bytes(3)
        di = int(dirty)
        probe = _line(policy, dirty, config, payload)
        if probe.ecc_checks is not None:
            for c1 in range(8):
                line = _line(policy, dirty, config, payload)
                line.ecc_checks[0] ^= 1 << c1
                assert (
                    OUTCOME_ORDER[plan.check1[di, c1]]
                    is _classify(line, dirty, config)
                ), f"{scheme} dirty={dirty} c={c1}"
                for c2 in range(8):
                    line = _line(policy, dirty, config, payload)
                    line.ecc_checks[0] ^= (1 << c1) ^ (1 << c2)
                    assert (
                        OUTCOME_ORDER[plan.check2[di, c1, c2]]
                        is _classify(line, dirty, config)
                    ), f"{scheme} dirty={dirty} pair=({c1},{c2})"
        if probe.parity_checks is not None:
            line = _line(policy, dirty, config, payload)
            line.parity_checks[0] ^= 1
            assert (
                OUTCOME_ORDER[plan.check_parity[di]]
                is _classify(line, dirty, config)
            ), f"{scheme} dirty={dirty} parity column"

    @pytest.mark.parametrize("dirty", [False, True])
    def test_tag_scalars_match_protected_tag(self, dirty):
        config = FaultModelConfig()
        di = int(dirty)
        for scheme in sorted(SCHEMES):
            plan = vector._vector_plan(scheme_policy(scheme), config)
            for seed in range(10):  # any tag value, any struck bits
                rng = random.Random(seed)
                assert (
                    OUTCOME_ORDER[plan.tag1[di]]
                    is _inject_tag(dirty, 1, config, rng)
                )
                assert (
                    OUTCOME_ORDER[plan.tag2[di]]
                    is _inject_tag(dirty, 2, config, rng)
                )

    @pytest.mark.parametrize("dirty", [False, True])
    def test_status_pair_predicate_matches_inject_status(self, dirty):
        # The kernel computes status outcomes inline:
        # double-strike SDC iff dirty and a struck bit is valid/dirty.
        class _FixedSample(random.Random):
            def __init__(self, picks):
                super().__init__(0)
                self._picks = picks

            def sample(self, population, k):
                return list(self._picks[:k])

        config = FaultModelConfig()
        single = _inject_status(dirty, 1, config, _FixedSample((0,)))
        assert single is (
            TrialOutcome.DUE if dirty else TrialOutcome.REFETCHED
        )
        for b1 in range(config.status_bits):
            for b2 in range(config.status_bits):
                if b1 == b2:
                    continue
                expected = (
                    TrialOutcome.SDC
                    if dirty and (b1 < 2 or b2 < 2)
                    else TrialOutcome.MASKED
                )
                got = _inject_status(
                    dirty, 2, config, _FixedSample((b1, b2))
                )
                assert got is expected, f"dirty={dirty} pair=({b1},{b2})"


@needs_numpy
class TestDistributionEquivalence:
    """Vector-vs-batch per-(domain, outcome) rates within the z bound."""

    @staticmethod
    def _assert_equivalent(scheme, config, n=GATE_TRIALS):
        policy = scheme_policy(scheme)
        batch, _ = run_trials_batch(
            policy, config, n, random.Random(1234), pool=LinePool.shared()
        )
        vec, _ = run_trials_vector(policy, config, n, seed=5678)
        a, b = _flat(batch), _flat(vec)
        assert sum(a.values()) == sum(b.values()) == n
        for key in sorted(set(a) | set(b)):
            z = two_proportion_z(a.get(key, 0), n, b.get(key, 0), n)
            assert abs(z) <= Z_BOUND, (
                f"{scheme} {key}: batch {a.get(key, 0)}/{n} vs "
                f"vector {b.get(key, 0)}/{n} (z={z:+.2f})"
            )

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("dirty_fraction", [0.0, 1.0])
    @pytest.mark.parametrize("double_bit_fraction", [0.0, 1.0])
    @pytest.mark.parametrize("controller_refetch", [False, True])
    def test_forced_corner_grid(
        self, scheme, dirty_fraction, double_bit_fraction, controller_refetch
    ):
        # The corners force every (state, multiplicity, controller)
        # branch pair, so a wiring error in any one of them cannot hide
        # behind the default mixture.
        self._assert_equivalent(
            scheme,
            FaultModelConfig(
                dirty_fraction=dirty_fraction,
                double_bit_fraction=double_bit_fraction,
                controller_refetch=controller_refetch,
            ),
        )

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_default_model(self, scheme):
        self._assert_equivalent(scheme, FaultModelConfig())


@needs_numpy
class TestVectorKernelBehaviour:
    def test_deterministic_per_seed(self):
        policy = scheme_policy("non-uniform")
        config = FaultModelConfig()
        first = run_trials_vector(policy, config, 5000, seed=7, sample_limit=16)
        again = run_trials_vector(policy, config, 5000, seed=7, sample_limit=16)
        other = run_trials_vector(policy, config, 5000, seed=8, sample_limit=16)
        assert first == again
        assert first != other

    def test_counts_conserved_across_blocks(self):
        outcomes, _ = run_trials_vector(
            scheme_policy("uniform-ecc"),
            FaultModelConfig(),
            2500,
            seed=3,
            block_trials=512,
        )
        assert sum(_flat(outcomes).values()) == 2500

    def test_samples_shape_and_limit(self):
        domains = {"data", "tag", "status", "check"}
        outcome_values = {o.value for o in OUTCOME_ORDER}
        _, samples = run_trials_vector(
            scheme_policy("non-uniform"),
            FaultModelConfig(),
            200,
            seed=11,
            sample_limit=64,
        )
        assert len(samples) == 64
        assert [s[0] for s in samples] == list(range(64))
        for _, domain, dirty, outcome in samples:
            assert domain in domains
            assert isinstance(dirty, bool)
            assert outcome in outcome_values

    def test_zero_and_negative_trials(self):
        policy = scheme_policy("parity-only")
        assert run_trials_vector(policy, FaultModelConfig(), 0, 1) == ({}, [])
        with pytest.raises(ValueError):
            run_trials_vector(policy, FaultModelConfig(), -1, 1)

    def test_run_shard_dispatches_vector(self):
        spec = ShardSpec(
            scheme="non-uniform",
            index=0,
            trials=2000,
            seed=shard_seed(7, "non-uniform", 0),
            model=FaultModelConfig(),
            kernel="vector",
        )
        result = run_shard(spec)
        outcomes, samples = run_trials_vector(
            scheme_policy("non-uniform"),
            spec.model,
            spec.trials,
            spec.seed,
            sample_limit=spec.sample_limit,
        )
        assert result.outcomes == outcomes
        assert result.samples == samples
        assert sum(result.outcome_totals().values()) == 2000


@needs_numpy
class TestVectorCampaign:
    @staticmethod
    def _config(**kwargs):
        defaults = dict(
            schemes=("uniform-ecc", "non-uniform"),
            trials=1200,
            trials_per_shard=300,
            seed=9,
            kernel="vector",
        )
        defaults.update(kwargs)
        return CampaignConfig(**defaults)

    @staticmethod
    def _engine():
        return SweepEngine(jobs=1, cache=False, progress=False)

    def test_campaign_runs_end_to_end(self):
        result = run_campaign(self._config(), engine=self._engine())
        for name in ("uniform-ecc", "non-uniform"):
            assert result.schemes[name].trials == 1200

    def test_batch_checkpoint_resumes_under_vector(self, tmp_path):
        # The kernel stays out of the checkpoint digest: a campaign
        # interrupted under --kernel batch resumes under --kernel vector
        # (completed shards are reused verbatim; only the remainder is
        # re-sampled by the vector stream).
        class _Interrupting(SweepEngine):
            def __init__(self):
                super().__init__(jobs=1, cache=False, progress=False)
                self.calls = 0

            def map_tasks(self, func, items, phase="map"):
                self.calls += 1
                if self.calls >= 2:
                    raise KeyboardInterrupt
                return super().map_tasks(func, items, phase=phase)

        path = tmp_path / "campaign.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                self._config(kernel="batch", shards_per_round=1),
                engine=_Interrupting(),
                checkpoint=str(path),
            )
        resumed = run_campaign(
            self._config(shards_per_round=1),
            engine=self._engine(),
            checkpoint=str(path),
        )
        assert resumed.resumed_shards > 0
        assert resumed.executed_shards > 0
        for name in ("uniform-ecc", "non-uniform"):
            assert resumed.schemes[name].trials == 1200


class TestNumpyOptionality:
    """The [fast]-less story: import works, vector fails cleanly."""

    def test_module_imports_without_numpy_flag(self):
        assert isinstance(HAVE_NUMPY, bool)

    def test_require_numpy_raises_repro_error(self, monkeypatch):
        monkeypatch.setattr(vector, "HAVE_NUMPY", False)
        with pytest.raises(api.ReproError, match=r"pip install -e \.\[fast\]"):
            vector.require_numpy()

    def test_campaign_config_rejects_vector_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vector, "HAVE_NUMPY", False)
        with pytest.raises(ValueError, match="numpy"):
            CampaignConfig(kernel="vector")

    def test_facade_rejects_vector_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vector, "HAVE_NUMPY", False)
        with pytest.raises(api.ReproError, match=r"\[fast\]"):
            api.ReliabilityRequest(kernel="vector")

    def test_facade_rejects_unknown_kernel(self):
        with pytest.raises(
            api.ReproError, match="available backends: batch, reference, vector"
        ):
            api.ReliabilityRequest(kernel="turbo")
