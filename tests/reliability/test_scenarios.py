"""Scenario packs: presets, cross-kernel identity, digests, fallback.

Four contracts are pinned here:

1. **Nominal is frozen.**  The per-trial outcome stream *and* the
   final Mersenne-Twister state of the nominal model match golden
   SHA-256 digests recorded before the scenario engine existed — the
   scenario dispatch must never perturb historical seeds.
2. **Reference ≡ batch for every scenario × codec.**  Both kernels
   draw through the shared samplers, so their outcomes and final RNG
   state are bit-identical, not merely same-distribution.
3. **Checkpoints are scenario-guarded.**  A non-default scenario or
   codec changes the config digest (resume across scenarios is a hard
   error) while the nominal digest is unchanged from pre-scenario
   checkpoints.
4. **The vector kernel falls back to batch** off the nominal path,
   bit-identically.
"""

import hashlib
import random

import pytest

from repro.experiments.pool import SweepEngine
from repro.reliability.campaign import (
    CampaignConfig,
    ShardSpec,
    run_campaign,
    run_shard,
    shard_seed,
)
from repro.reliability.checkpoint import CheckpointError
from repro.reliability.kernel import LinePool, run_trials_batch
from repro.reliability.model import (
    SCHEMES,
    FaultModelConfig,
    run_trial,
    scheme_policy,
)
from repro.reliability.scenarios import (
    FaultClass,
    Scenario,
    _SCENARIOS,
    available_scenarios,
    get_scenario,
    register_scenario,
)


def _engine(jobs=1):
    return SweepEngine(jobs=jobs, cache=False, progress=False)


@pytest.fixture
def scenario_registry():
    """Snapshot/restore the global registry around registering tests."""
    saved = dict(_SCENARIOS)
    yield _SCENARIOS
    _SCENARIOS.clear()
    _SCENARIOS.update(saved)


class TestRegistry:
    def test_presets_present_nominal_first(self):
        assert available_scenarios() == [
            "nominal", "burst-heavy", "low-voltage", "rowcol",
        ]

    def test_unknown_scenario_error_enumerates(self):
        with pytest.raises(ValueError, match="known:.*nominal"):
            get_scenario("bogus")

    def test_preset_weights_sum_to_one(self):
        for name in available_scenarios():
            scenario = get_scenario(name)
            classes = scenario.resolve(0.05)
            assert abs(sum(c.weight for c in classes) - 1.0) < 1e-9

    def test_nominal_resolves_from_double_bit_fraction(self):
        classes = get_scenario("nominal").resolve(0.2)
        assert [(c.kind, c.weight) for c in classes] == [
            ("single", 0.8), ("word2", 0.2),
        ]

    def test_register_requires_name_and_weight_sum(self, scenario_registry):
        with pytest.raises(ValueError):
            register_scenario(Scenario(name="", description="x"))
        with pytest.raises(ValueError, match="sum to 1"):
            Scenario(
                name="half", description="x",
                classes=(FaultClass("single", 0.5),),
            )

    def test_fault_class_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultClass("diagonal", 1.0)
        with pytest.raises(ValueError, match="burst_pmf"):
            FaultClass("burst", 1.0)
        with pytest.raises(ValueError, match="sum to 1"):
            FaultClass("burst", 1.0, burst_pmf=((2, 0.5),))
        with pytest.raises(ValueError, match=">= 2"):
            FaultClass("burst", 1.0, burst_pmf=((1, 1.0),))
        with pytest.raises(ValueError, match="span_words"):
            FaultClass("column", 1.0, span_words=1)

    def test_model_config_validates_scenario_and_codec(self):
        with pytest.raises(ValueError):
            FaultModelConfig(scenario="bogus")
        with pytest.raises(ValueError):
            FaultModelConfig(ecc_codec="bogus")


#: Golden digests of 4000 nominal reference trials (outcome stream +
#: final RNG state), recorded before the scenario engine existed.
NOMINAL_GOLDEN = {
    "uniform-ecc":
        "bc8b9b62e5de7701db59b1e2bd37e7bdad06f35f9087a6847a57c8a852b4ea08",
    "non-uniform":
        "e1d5dc0c3c0396bbcaa7b7b0d352f80027305757425b915010c36fb4f6fd6182",
    "parity-only":
        "ab7372feed76e7d7651118ebcbd923e978668e8779a5605abd201973dc0454f7",
}


def _stream_digest(scheme, config, trials=4000):
    rng = random.Random(shard_seed(0, scheme, 0))
    pool = LinePool.shared(64)
    policy = scheme_policy(scheme)
    digest = hashlib.sha256()
    for _ in range(trials):
        outcome, domain, dirty = run_trial(policy, config, rng, pool)
        digest.update(f"{outcome.value}:{domain.value}:{int(dirty)};".encode())
    digest.update(repr(rng.getstate()).encode())
    return digest.hexdigest()


class TestNominalIsFrozen:
    @pytest.mark.parametrize("scheme", sorted(NOMINAL_GOLDEN))
    def test_reference_stream_matches_pre_scenario_golden(self, scheme):
        config = FaultModelConfig(dirty_fraction=0.4)
        assert _stream_digest(scheme, config) == NOMINAL_GOLDEN[scheme]

    def test_explicit_nominal_config_is_the_same_stream(self):
        assert _stream_digest(
            "uniform-ecc",
            FaultModelConfig(dirty_fraction=0.4, scenario="nominal",
                             ecc_codec="secded"),
        ) == NOMINAL_GOLDEN["uniform-ecc"]


def _reference_outcomes(policy, config, n, rng, pool):
    outcomes = {}
    for _ in range(n):
        outcome, domain, _ = run_trial(policy, config, rng, pool)
        per_domain = outcomes.setdefault(domain.value, {})
        per_domain[outcome.value] = per_domain.get(outcome.value, 0) + 1
    return outcomes


class TestReferenceBatchIdentity:
    """Shared samplers ⇒ identical streams, for every scenario/codec."""

    @pytest.mark.parametrize("scenario", [
        "nominal", "burst-heavy", "rowcol", "low-voltage",
    ])
    @pytest.mark.parametrize("codec", [
        "secded", "dected", "rs-symbol", "parity",
    ])
    def test_outcomes_and_rng_state_identical(self, scenario, codec):
        for scheme in SCHEMES:
            config = FaultModelConfig(
                dirty_fraction=0.5, scenario=scenario, ecc_codec=codec
            )
            policy = scheme_policy(scheme)
            seed = shard_seed(3, scheme, 0)
            pool = LinePool.shared(64)
            rng_ref = random.Random(seed)
            ref = _reference_outcomes(policy, config, 400, rng_ref, pool)
            rng_batch = random.Random(seed)
            batch, _ = run_trials_batch(policy, config, 400, rng_batch)
            assert batch == ref
            assert rng_batch.getstate() == rng_ref.getstate()


class TestJobsInvariance:
    def test_burst_heavy_campaign_identical_at_any_jobs(self):
        config = CampaignConfig(
            schemes=("uniform-ecc", "non-uniform"),
            trials=600,
            trials_per_shard=100,
            seed=11,
            model=FaultModelConfig(
                scenario="burst-heavy", ecc_codec="dected"
            ),
        )
        seq = run_campaign(config, engine=_engine(jobs=1))
        par = run_campaign(config, engine=_engine(jobs=4))
        for name in config.schemes:
            assert (
                seq.schemes[name].outcome_counts
                == par.schemes[name].outcome_counts
            )
            assert seq.schemes[name].trials == par.schemes[name].trials


class TestCheckpointDigests:
    def _config(self, **model_kwargs):
        return CampaignConfig(
            schemes=("uniform-ecc",),
            trials=200,
            trials_per_shard=100,
            seed=5,
            model=FaultModelConfig(**model_kwargs),
        )

    def test_nominal_describe_omits_scenario_keys(self):
        for entry in self._config().describe()["model"].values():
            assert "scenario" not in entry
            assert "ecc_codec" not in entry

    def test_non_default_describe_includes_them(self):
        config = self._config(scenario="rowcol", ecc_codec="rs-symbol")
        for entry in config.describe()["model"].values():
            assert entry["scenario"] == "rowcol"
            assert entry["ecc_codec"] == "rs-symbol"

    def test_scenario_change_refuses_the_checkpoint(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_campaign(
            self._config(scenario="burst-heavy"),
            engine=_engine(),
            checkpoint=str(path),
        )
        with pytest.raises(CheckpointError):
            run_campaign(
                self._config(), engine=_engine(), checkpoint=str(path)
            )
        with pytest.raises(CheckpointError):
            run_campaign(
                self._config(scenario="rowcol"),
                engine=_engine(),
                checkpoint=str(path),
            )

    def test_codec_change_refuses_the_checkpoint(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_campaign(
            self._config(ecc_codec="dected"),
            engine=_engine(),
            checkpoint=str(path),
        )
        with pytest.raises(CheckpointError):
            run_campaign(
                self._config(), engine=_engine(), checkpoint=str(path)
            )

    def test_same_scenario_resumes(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        config = self._config(scenario="low-voltage", ecc_codec="dected")
        first = run_campaign(config, engine=_engine(), checkpoint=str(path))
        again = run_campaign(config, engine=_engine(), checkpoint=str(path))
        assert again.executed_shards == 0
        assert (
            first.schemes["uniform-ecc"].outcome_counts
            == again.schemes["uniform-ecc"].outcome_counts
        )


class TestVectorFallback:
    def _spec(self, kernel, **model_kwargs):
        return ShardSpec(
            scheme="uniform-ecc",
            index=0,
            trials=400,
            seed=shard_seed(0, "uniform-ecc", 0),
            model=FaultModelConfig(**model_kwargs),
            kernel=kernel,
        )

    def test_vector_falls_back_to_batch_for_scenarios(self):
        vector = run_shard(
            self._spec("vector", scenario="burst-heavy")
        )
        batch = run_shard(self._spec("batch", scenario="burst-heavy"))
        assert vector.outcomes == batch.outcomes

    def test_vector_falls_back_for_non_default_codec(self):
        vector = run_shard(self._spec("vector", ecc_codec="dected"))
        batch = run_shard(self._spec("batch", ecc_codec="dected"))
        assert vector.outcomes == batch.outcomes

    def test_nominal_vector_stays_vector(self):
        pytest.importorskip("numpy")
        # The nominal vector stream is deliberately *different* from
        # the batch stream (bulk draws reorder the RNG): identical
        # outcomes would mean the fallback fired where it must not.
        vector = run_shard(self._spec("vector"))
        batch = run_shard(self._spec("batch"))
        assert vector.outcomes != batch.outcomes


class TestBerScale:
    def test_low_voltage_scales_fit_only(self, scenario_registry):
        """ber_scale multiplies FIT quoting, not the trial stream."""
        heavy = get_scenario("low-voltage")
        register_scenario(Scenario(
            name="low-voltage-1x",
            description="low-voltage mixture without the rate scaling",
            classes=heavy.classes,
            ber_scale=1.0,
        ))
        results = {}
        for name in ("low-voltage", "low-voltage-1x"):
            results[name] = run_campaign(
                CampaignConfig(
                    schemes=("uniform-ecc",),
                    trials=400,
                    trials_per_shard=100,
                    seed=9,
                    model=FaultModelConfig(scenario=name),
                ),
                engine=_engine(),
            )
        scaled = results["low-voltage"].schemes["uniform-ecc"]
        plain = results["low-voltage-1x"].schemes["uniform-ecc"]
        # Identical class mixture ⇒ identical trials...
        assert scaled.outcome_counts == plain.outcome_counts
        # ...but 4x the quoted failure rates.
        assert heavy.ber_scale == 4.0
        assert scaled.estimate.fit_sdc[0] == pytest.approx(
            4.0 * plain.estimate.fit_sdc[0]
        )
        assert scaled.estimate.fit_due[0] == pytest.approx(
            4.0 * plain.estimate.fit_due[0]
        )
