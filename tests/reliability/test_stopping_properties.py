"""Property tests: Wilson invariants, two-proportion equivalence helper.

``tests/reliability/test_stopping.py`` pins worked examples and the
stopping rule; this module drives the same functions with hypothesis
over their whole domain — the invariants the vector kernel's
distribution gate (``tests/reliability/test_vector.py``) leans on.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reliability.stopping import (
    proportions_match,
    two_proportion_z,
    wilson_half_width,
    wilson_interval,
)

@st.composite
def sample(draw):
    """A well-formed (successes, trials) pair, trials >= 1."""
    n = draw(st.integers(min_value=1, max_value=200_000))
    s = draw(st.integers(min_value=0, max_value=n))
    return s, n


class TestWilsonProperties:
    @given(sample())
    def test_interval_is_ordered_clamped_and_contains_the_rate(self, sn):
        s, n = sn
        lo, hi = wilson_interval(s, n)
        assert 0.0 <= lo <= s / n <= hi <= 1.0

    @given(sample())
    def test_boundary_counts_clamp_exactly(self, sn):
        s, n = sn
        lo, hi = wilson_interval(s, n)
        if s == 0:
            assert lo == 0.0
        if s == n:
            assert hi == 1.0

    @given(sample())
    def test_complement_symmetry(self, sn):
        # Successes and failures are the same evidence mirrored.
        s, n = sn
        lo, hi = wilson_interval(s, n)
        lo_c, hi_c = wilson_interval(n - s, n)
        assert lo == pytest.approx(1.0 - hi_c, abs=1e-9)
        assert hi == pytest.approx(1.0 - lo_c, abs=1e-9)

    @given(
        sn=sample(),
        scale=st.integers(min_value=2, max_value=100),
    )
    def test_scaling_the_evidence_never_widens(self, sn, scale):
        s, n = sn
        before = wilson_half_width(s, n)
        after = wilson_half_width(s * scale, n * scale)
        assert after <= before + 1e-12

    @given(sample())
    def test_half_width_matches_the_interval(self, sn):
        s, n = sn
        lo, hi = wilson_interval(s, n)
        assert wilson_half_width(s, n) == pytest.approx((hi - lo) / 2)


class TestTwoProportionZ:
    @given(a=sample(), b=sample())
    def test_finite_and_antisymmetric(self, a, b):
        z = two_proportion_z(a[0], a[1], b[0], b[1])
        assert math.isfinite(z)
        assert z == pytest.approx(
            -two_proportion_z(b[0], b[1], a[0], a[1]), abs=1e-9
        )

    @given(sample())
    def test_identical_samples_give_zero(self, sn):
        s, n = sn
        assert two_proportion_z(s, n, s, n) == 0.0

    @given(a=sample(), b=sample())
    def test_sign_follows_the_rate_difference(self, a, b):
        z = two_proportion_z(a[0], a[1], b[0], b[1])
        diff = a[0] / a[1] - b[0] / b[1]
        if z > 0:
            assert diff > 0
        elif z < 0:
            assert diff < 0

    @given(sn=sample(), n_other=st.integers(min_value=1, max_value=200_000))
    def test_degenerate_pooled_rates_are_zero(self, sn, n_other):
        # All-success or all-failure on both sides: se == 0, defined as
        # agreement rather than a division error.
        s, n = sn
        assert two_proportion_z(0, n, 0, n_other) == 0.0
        assert two_proportion_z(n, n, n_other, n_other) == 0.0

    @given(sample())
    def test_empty_samples_are_zero(self, sn):
        # No trials on one side: no evidence of disagreement.
        s, n = sn
        assert two_proportion_z(0, 0, s, n) == 0.0
        assert two_proportion_z(s, n, 0, 0) == 0.0

    @pytest.mark.parametrize(
        "args",
        [(-1, 10, 0, 10), (11, 10, 0, 10), (0, 10, -1, 10), (0, 10, 11, 10)],
    )
    def test_rejects_malformed_counts(self, args):
        with pytest.raises(ValueError):
            two_proportion_z(*args)

    @given(a=sample(), b=sample(), bound=st.floats(min_value=0.1, max_value=10.0))
    def test_proportions_match_is_the_abs_z_threshold(self, a, b, bound):
        z = two_proportion_z(a[0], a[1], b[0], b[1])
        assert proportions_match(
            a[0], a[1], b[0], b[1], z_bound=bound
        ) == (abs(z) <= bound)

    def test_detects_a_gross_mismatch(self):
        # 10% vs 20% at n=10k is far outside any sane bound.
        assert not proportions_match(1000, 10_000, 2000, 10_000)
        assert proportions_match(1000, 10_000, 1010, 10_000)
