"""The bench regression gate fails with messages, never tracebacks.

``scripts/check_bench.py`` guards CI against kernel-throughput
regressions; these tests pin its failure modes — a schema-bumped or
hand-edited artifact must produce ``FAIL:`` lines (all of them, with
the ``make bench-baseline`` hint) and exit code 1, not a ``KeyError``.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "check_bench.py"
_spec = importlib.util.spec_from_file_location("check_bench", _SCRIPT)
check_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench)


def _doc(**overrides):
    """A minimal valid current-schema artifact."""
    doc = {
        "schema": check_bench.SCHEMA,
        "kernels": {
            "reference": {"trials_per_s": 10_000.0},
            "batch": {
                "trials_per_s": 250_000.0,
                "speedup_vs_reference": 25.0,
            },
            "vector": {
                "trials_per_s": 5_000_000.0,
                "speedup_vs_batch": 20.0,
                "speedup_vs_reference": 500.0,
            },
        },
        "autotune": {
            "points": 3,
            "cells_per_s_cold": 8.0,
            "cells_per_s_warm": 800.0,
            "warm_speedup": 100.0,
        },
        "runner": {
            "refs": 40_000,
            "standard_refs_per_s": 500_000.0,
            "silent_write_refs_per_s": 490_000.0,
            "overhead_pct": 2.0,
        },
    }
    doc.update(overrides)
    return doc


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc), encoding="utf-8")
    return str(path)


def _run(tmp_path, capsys, current, baseline, *extra):
    rc = check_bench.main(
        [
            "--current",
            _write(tmp_path, "current.json", current),
            "--baseline",
            _write(tmp_path, "baseline.json", baseline),
            *extra,
        ]
    )
    return rc, capsys.readouterr().out


class TestValidation:
    def test_passing_pair(self, tmp_path, capsys):
        rc, out = _run(tmp_path, capsys, _doc(), _doc())
        assert rc == 0
        assert "PASS:" in out
        assert "vector" in out

    def test_schema_mismatch_fails_with_hint(self, tmp_path, capsys):
        rc, out = _run(tmp_path, capsys, _doc(), _doc(schema=1))
        assert rc == 1
        assert "FAIL: baseline: schema 1" in out
        assert "make bench-baseline" in out
        assert "Traceback" not in out

    def test_schema_v1_shape_fails_before_any_deref(self, tmp_path, capsys):
        # A real pre-v2 artifact: no kernels section at all.  Every
        # structural problem is reported, not just the first.
        old = {
            "schema": 1,
            "batch_trials_per_s": 250_000.0,
            "speedup": 25.0,
        }
        rc, out = _run(tmp_path, capsys, old, _doc())
        assert rc == 1
        assert "FAIL: current: schema 1" in out
        assert "FAIL: current: missing per-backend 'kernels' section" in out
        assert "Traceback" not in out and "KeyError" not in out

    def test_missing_required_key_fails(self, tmp_path, capsys):
        broken = _doc()
        del broken["kernels"]["batch"]["speedup_vs_reference"]
        rc, out = _run(tmp_path, capsys, broken, _doc())
        assert rc == 1
        assert "FAIL: current: kernels['batch']['speedup_vs_reference']" in out
        assert "make bench-baseline" in out

    def test_non_numeric_value_fails(self, tmp_path, capsys):
        broken = _doc()
        broken["kernels"]["reference"]["trials_per_s"] = "fast"
        rc, out = _run(tmp_path, capsys, broken, _doc())
        assert rc == 1
        assert "FAIL: current: kernels['reference']['trials_per_s']" in out

    def test_all_violations_reported_together(self, tmp_path, capsys):
        rc, out = _run(
            tmp_path, capsys, {"schema": 99}, {"not": "an artifact"}
        )
        assert rc == 1
        fails = [line for line in out.splitlines() if line.startswith("FAIL:")]
        assert len(fails) >= 3  # current schema+kernels, baseline schema+kernels
        assert any("current" in line for line in fails)
        assert any("baseline" in line for line in fails)

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            check_bench.main(
                [
                    "--current",
                    str(tmp_path / "nope.json"),
                    "--baseline",
                    _write(tmp_path, "baseline.json", _doc()),
                ]
            )
        assert "FAIL:" in str(excinfo.value)

    def test_invalid_json_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{", encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            check_bench.main(
                [
                    "--current",
                    str(bad),
                    "--baseline",
                    _write(tmp_path, "baseline.json", _doc()),
                ]
            )
        assert "FAIL:" in str(excinfo.value)


class TestGates:
    def test_throughput_regression_fails(self, tmp_path, capsys):
        slow = _doc()
        slow["kernels"]["batch"]["trials_per_s"] = 100_000.0  # -60%
        rc, out = _run(tmp_path, capsys, slow, _doc())
        assert rc == 1
        assert "FAIL: batch throughput" in out

    def test_vector_regression_fails(self, tmp_path, capsys):
        slow = _doc()
        slow["kernels"]["vector"]["trials_per_s"] = 1_000_000.0
        rc, out = _run(tmp_path, capsys, slow, _doc())
        assert rc == 1
        assert "FAIL: vector throughput" in out

    def test_speedup_floors(self, tmp_path, capsys):
        weak = _doc()
        weak["kernels"]["batch"]["speedup_vs_reference"] = 8.0
        weak["kernels"]["vector"]["speedup_vs_batch"] = 3.0
        rc, out = _run(tmp_path, capsys, weak, weak)
        assert rc == 1
        assert "batch/reference speedup 8.0x" in out
        assert "vector/batch speedup 3.0x" in out

    def test_vector_absent_from_current_is_a_skip(self, tmp_path, capsys):
        # The stdlib-only configuration must stay green even against a
        # baseline that *does* carry a vector entry.
        current = _doc()
        del current["kernels"]["vector"]
        rc, out = _run(tmp_path, capsys, current, _doc())
        assert rc == 0
        assert "vector backend not measured" in out

    def test_vector_absent_from_baseline_is_a_skip(self, tmp_path, capsys):
        baseline = _doc()
        del baseline["kernels"]["vector"]
        rc, out = _run(tmp_path, capsys, _doc(), baseline)
        assert rc == 0
        assert "baseline has no vector entry" in out

    def test_tolerance_flag_loosens_the_floor(self, tmp_path, capsys):
        slow = _doc()
        slow["kernels"]["batch"]["trials_per_s"] = 100_000.0
        rc, _ = _run(tmp_path, capsys, slow, _doc(), "--tolerance", "0.9")
        assert rc == 0


class TestAutotuneFloors:
    def test_missing_autotune_section_fails_validation(
        self, tmp_path, capsys
    ):
        broken = _doc()
        del broken["autotune"]
        rc, out = _run(tmp_path, capsys, broken, _doc())
        assert rc == 1
        assert "FAIL: current: missing 'autotune' section" in out
        assert "make bench-baseline" in out

    def test_malformed_autotune_fails_before_deref(self, tmp_path, capsys):
        broken = _doc(autotune={"cells_per_s_cold": "quick"})
        rc, out = _run(tmp_path, capsys, broken, _doc())
        assert rc == 1
        assert "autotune['cells_per_s_cold']" in out
        assert "autotune['warm_speedup']" in out
        assert "Traceback" not in out

    def test_cold_pass_regression_fails(self, tmp_path, capsys):
        slow = _doc()
        slow["autotune"]["cells_per_s_cold"] = 2.0  # -75% vs baseline 8
        rc, out = _run(tmp_path, capsys, slow, _doc())
        assert rc == 1
        assert "FAIL: autotune cold-pass throughput" in out

    def test_warm_speedup_floor(self, tmp_path, capsys):
        # The ratio is gated within the current run: a dead point cache
        # shows up as ~1x even when absolute rates look healthy.
        broken = _doc()
        broken["autotune"]["warm_speedup"] = 1.1
        rc, out = _run(tmp_path, capsys, broken, _doc())
        assert rc == 1
        assert "autotune warm-cache speedup 1.1x" in out

    def test_speedup_flag_overrides_the_floor(self, tmp_path, capsys):
        modest = _doc()
        modest["autotune"]["warm_speedup"] = 3.0
        rc, _ = _run(tmp_path, capsys, modest, _doc(),
                     "--min-autotune-speedup", "2.0")
        assert rc == 0

    def test_summary_quotes_autotune(self, tmp_path, capsys):
        rc, out = _run(tmp_path, capsys, _doc(), _doc())
        assert rc == 0
        assert "autotune 8.0 cells/s cold (100x warm)" in out


def _scenarios(rate):
    return {
        "nominal": {"batch_trials_per_s": rate},
        "burst-heavy": {"batch_trials_per_s": rate / 2},
    }


class TestScenarioFloors:
    def test_scenario_regression_fails(self, tmp_path, capsys):
        rc, out = _run(
            tmp_path,
            capsys,
            _doc(scenarios=_scenarios(50_000.0)),
            _doc(scenarios=_scenarios(200_000.0)),
        )
        assert rc == 1
        assert "scenario 'burst-heavy'" in out
        assert "scenario 'nominal'" in out

    def test_within_tolerance_passes(self, tmp_path, capsys):
        rc, out = _run(
            tmp_path,
            capsys,
            _doc(scenarios=_scenarios(190_000.0)),
            _doc(scenarios=_scenarios(200_000.0)),
        )
        assert rc == 0
        assert "PASS:" in out

    def test_baseline_without_scenarios_skips_gracefully(
        self, tmp_path, capsys
    ):
        # A pre-v3 baseline shape (minus the schema bump) must not
        # fail the gate just because it lacks scenario rows.
        rc, out = _run(
            tmp_path, capsys, _doc(scenarios=_scenarios(50_000.0)), _doc()
        )
        assert rc == 0
        assert "scenario floors skipped" in out

    def test_malformed_scenarios_fail_before_deref(self, tmp_path, capsys):
        rc, out = _run(
            tmp_path,
            capsys,
            _doc(scenarios={"nominal": {}}),
            _doc(scenarios=_scenarios(1.0)),
        )
        assert rc == 1
        assert "scenarios['nominal']" in out
        assert "bench-baseline" in out


def _runner(rate, overhead=2.0):
    return {
        "refs": 40_000,
        "standard_refs_per_s": rate,
        "silent_write_refs_per_s": rate * (1 - overhead / 100),
        "overhead_pct": overhead,
    }


class TestRunnerFloors:
    def test_missing_runner_section_fails_validation(
        self, tmp_path, capsys
    ):
        doc = _doc()
        del doc["runner"]
        rc, out = _run(tmp_path, capsys, doc, _doc())
        assert rc == 1
        assert "FAIL: current: missing 'runner' section" in out
        assert "bench-baseline" in out

    def test_malformed_runner_fails_before_deref(self, tmp_path, capsys):
        rc, out = _run(tmp_path, capsys, _doc(runner={}), _doc())
        assert rc == 1
        assert "runner['standard_refs_per_s']" in out
        assert "runner['overhead_pct']" in out

    def test_nominal_path_regression_fails(self, tmp_path, capsys):
        rc, out = _run(
            tmp_path,
            capsys,
            _doc(runner=_runner(100_000.0)),
            _doc(runner=_runner(500_000.0)),
        )
        assert rc == 1
        assert "runner standard-path throughput" in out

    def test_detection_overhead_ceiling(self, tmp_path, capsys):
        rc, out = _run(
            tmp_path,
            capsys,
            _doc(runner=_runner(500_000.0, overhead=9.0)),
            _doc(),
        )
        assert rc == 1
        assert "silent-write detection overhead 9.0% exceeds" in out

    def test_overhead_flag_overrides_the_ceiling(self, tmp_path, capsys):
        rc, out = _run(
            tmp_path,
            capsys,
            _doc(runner=_runner(500_000.0, overhead=9.0)),
            _doc(),
            "--max-runner-overhead", "15",
        )
        assert rc == 0
        assert "PASS:" in out

    def test_summary_quotes_runner(self, tmp_path, capsys):
        rc, out = _run(tmp_path, capsys, _doc(), _doc())
        assert rc == 0
        assert "runner 500,000 refs/s (2.0% detection overhead)" in out
