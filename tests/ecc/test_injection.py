"""Tests for the fault-injection harness."""

import random

import pytest

from repro.ecc import (
    CheckOutcome,
    FaultInjector,
    ParityCodec,
    SecDedCodec,
    flip_bit,
)
from repro.ecc.codec import CodewordError


class TestFlipBit:
    def test_flip_and_restore(self):
        w = 0xDEAD
        assert flip_bit(flip_bit(w, 3), 3) == w

    def test_flip_changes_exactly_one_bit(self):
        w = 0
        assert bin(flip_bit(w, 17)).count("1") == 1

    def test_flip_rejects_out_of_range(self):
        with pytest.raises(CodewordError):
            flip_bit(0, 64)
        with pytest.raises(CodewordError):
            flip_bit(0, -1)

    def test_flip_custom_width(self):
        assert flip_bit(0, 7, width=8) == 0x80
        with pytest.raises(CodewordError):
            flip_bit(0, 8, width=8)


class TestInject:
    def test_zero_flips_is_clean(self):
        inj = FaultInjector(SecDedCodec(), seed=1)
        outcome, word, check = inj.inject(0x1234, 0)
        assert outcome is CheckOutcome.OK
        assert word == 0x1234

    def test_single_flip_always_corrected_secded(self):
        inj = FaultInjector(SecDedCodec(), seed=2)
        for _ in range(200):
            outcome, _, _ = inj.inject(inj.rng.getrandbits(64), 1)
            assert outcome is CheckOutcome.CORRECTED

    def test_double_flip_always_detected_secded(self):
        inj = FaultInjector(SecDedCodec(), seed=3)
        for _ in range(200):
            outcome, _, _ = inj.inject(inj.rng.getrandbits(64), 2)
            assert outcome is CheckOutcome.DETECTED

    def test_single_flip_detected_parity(self):
        inj = FaultInjector(ParityCodec(), seed=4)
        for _ in range(100):
            outcome, _, _ = inj.inject(inj.rng.getrandbits(64), 1)
            assert outcome is CheckOutcome.DETECTED

    def test_double_flip_undetected_parity(self):
        """Two data flips slip through parity -> silent corruption."""
        inj = FaultInjector(ParityCodec(), seed=5)
        rng = random.Random(6)
        outcomes = set()
        for _ in range(100):
            word = rng.getrandbits(64)
            outcome, _, _ = inj.inject(word, 2)
            outcomes.add(outcome)
        assert CheckOutcome.UNDETECTED in outcomes

    def test_deterministic_with_seed(self):
        a = FaultInjector(SecDedCodec(), seed=42).campaign(50, 1)
        b = FaultInjector(SecDedCodec(), seed=42).campaign(50, 1)
        assert a.by_outcome == b.by_outcome


class TestCampaign:
    def test_counts_sum_to_trials(self):
        stats = FaultInjector(SecDedCodec(), seed=7).campaign(100, 1)
        assert stats.trials == 100
        assert sum(stats.by_outcome.values()) == 100

    def test_secded_1flip_rate(self):
        stats = FaultInjector(SecDedCodec(), seed=8).campaign(300, 1)
        assert stats.rate(CheckOutcome.CORRECTED) == 1.0

    def test_secded_2flip_rate(self):
        stats = FaultInjector(SecDedCodec(), seed=9).campaign(300, 2)
        assert stats.rate(CheckOutcome.DETECTED) == 1.0

    def test_secded_3flip_never_silently_ok(self):
        """Triple errors may miscorrect, but that is labelled UNDETECTED."""
        stats = FaultInjector(SecDedCodec(), seed=10).campaign(300, 3)
        covered = (
            stats.rate(CheckOutcome.DETECTED)
            + stats.rate(CheckOutcome.UNDETECTED)
            + stats.rate(CheckOutcome.CORRECTED)
        )
        assert covered == pytest.approx(1.0)
        # A genuine 3-bit repair to the original word is impossible:
        # CORRECTED can only appear if the repair restored ground truth.
        assert stats.rate(CheckOutcome.CORRECTED) == 0.0

    def test_empty_campaign_rates_are_zero(self):
        stats = FaultInjector(SecDedCodec(), seed=11).campaign(0, 1)
        assert stats.rate(CheckOutcome.OK) == 0.0
