"""Tests for the SECDED(72,64) codec: the full single/double error contract."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import CheckOutcome, SecDedCodec
from repro.ecc.codec import WORD_MASK, CodewordError
from repro.ecc.hamming import _COVER_MASKS, _DATA_POSITIONS

WORDS = st.integers(min_value=0, max_value=WORD_MASK)
CODE_BITS = st.integers(min_value=0, max_value=71)


def corrupt(word: int, check: int, bit: int):
    """Flip codeword bit ``bit`` (0..63 data, 64..71 check)."""
    if bit < 64:
        return word ^ (1 << bit), check
    return word, check ^ (1 << (bit - 64))


@pytest.fixture
def codec():
    return SecDedCodec()


class TestConstruction:
    def test_64_data_positions(self):
        assert len(_DATA_POSITIONS) == 64

    def test_data_positions_are_not_powers_of_two(self):
        for p in _DATA_POSITIONS:
            assert p & (p - 1) != 0

    def test_cover_masks_union_is_full_word(self):
        acc = 0
        for m in _COVER_MASKS:
            acc |= m
        assert acc == WORD_MASK

    def test_every_data_bit_covered_by_at_least_two_parities(self):
        """Positions are non-powers of two, so >= 2 index bits are set."""
        for i in range(64):
            covering = sum(1 for m in _COVER_MASKS if m & (1 << i))
            assert covering >= 2

    def test_check_bits_per_word(self, codec):
        assert codec.check_bits_per_word == 8


class TestEncode:
    def test_zero_word_encodes_to_zero(self, codec):
        assert codec.encode(0) == 0

    def test_encode_in_range(self, codec):
        assert 0 <= codec.encode(WORD_MASK) < 256

    def test_encode_rejects_out_of_range(self, codec):
        with pytest.raises(CodewordError):
            codec.encode(1 << 64)
        with pytest.raises(CodewordError):
            codec.encode(-5)

    @given(WORDS, WORDS)
    def test_encode_is_linear(self, a, b):
        """Hamming codes are linear: H(a^b) == H(a)^H(b)."""
        codec = SecDedCodec()
        assert codec.encode(a ^ b) == codec.encode(a) ^ codec.encode(b)


class TestClean:
    @given(WORDS)
    def test_clean_word_passes(self, word):
        codec = SecDedCodec()
        result = codec.check(word, codec.encode(word))
        assert result.outcome is CheckOutcome.OK
        assert result.data == word
        assert result.syndrome == 0


class TestSingleError:
    @given(WORDS, CODE_BITS)
    @settings(max_examples=300)
    def test_any_single_flip_corrected(self, word, bit):
        """SEC: every 1-bit error anywhere in the codeword is repaired."""
        codec = SecDedCodec()
        check = codec.encode(word)
        fw, fc = corrupt(word, check, bit)
        result = codec.check(fw, fc)
        assert result.outcome is CheckOutcome.CORRECTED
        assert result.data == word

    def test_overall_parity_bit_flip_corrected(self, codec):
        word = 0x0123_4567_89AB_CDEF
        check = codec.encode(word)
        result = codec.check(word, check ^ 0x80)  # bit 7 = overall parity
        assert result.outcome is CheckOutcome.CORRECTED
        assert result.data == word

    def test_hamming_parity_bit_flip_corrected(self, codec):
        word = 0xFFFF_0000_FFFF_0000
        check = codec.encode(word)
        for j in range(7):
            result = codec.check(word, check ^ (1 << j))
            assert result.outcome is CheckOutcome.CORRECTED
            assert result.data == word


class TestDoubleError:
    @given(
        WORDS,
        st.lists(CODE_BITS, min_size=2, max_size=2, unique=True),
    )
    @settings(max_examples=300)
    def test_any_double_flip_detected(self, word, bits):
        """DED: every 2-bit error is detected and never miscorrected."""
        codec = SecDedCodec()
        fw, fc = word, codec.encode(word)
        for b in bits:
            fw, fc = corrupt(fw, fc, b)
        result = codec.check(fw, fc)
        assert result.outcome is CheckOutcome.DETECTED


class TestCheckValidation:
    def test_check_rejects_oversized_check(self, codec):
        with pytest.raises(CodewordError):
            codec.check(0, 256)

    def test_check_rejects_oversized_word(self, codec):
        with pytest.raises(CodewordError):
            codec.check(1 << 64, 0)


class TestSyndromeTableArray:
    """The ndarray view the vectorized injection kernel gathers from."""

    def test_matches_the_list_tables_exactly(self):
        numpy = pytest.importorskip("numpy")
        from repro.ecc.hamming import SYNDROME_TABLES, syndrome_table_array

        array = syndrome_table_array()
        assert array.shape == (8, 256)
        assert array.dtype == numpy.uint8
        assert array.tolist() == [list(row) for row in SYNDROME_TABLES]

    def test_view_is_read_only_and_cached(self):
        numpy = pytest.importorskip("numpy")
        from repro.ecc.hamming import syndrome_table_array

        array = syndrome_table_array()
        with pytest.raises(ValueError):
            array[0, 0] = 1
        assert syndrome_table_array() is array

    @given(WORDS)
    @settings(max_examples=100)
    def test_gathered_byte_contributions_reencode_any_word(self, word):
        """XORing the eight per-byte gathers is the full encode — the
        linearity the vector kernel's table construction rests on."""
        numpy = pytest.importorskip("numpy")
        from repro.ecc.hamming import encode_word, syndrome_table_array

        array = syndrome_table_array()
        values = [(word >> (8 * k)) & 0xFF for k in range(8)]
        gathered = numpy.bitwise_xor.reduce(array[numpy.arange(8), values])
        assert int(gathered) == encode_word(word)
