"""Tests for the parity codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ecc import CheckOutcome, ParityCodec
from repro.ecc.codec import WORD_MASK, CodewordError
from repro.ecc.parity import _parity64

WORDS = st.integers(min_value=0, max_value=WORD_MASK)
BITS = st.integers(min_value=0, max_value=63)


@pytest.fixture
def codec():
    return ParityCodec()


class TestParityBit:
    def test_zero_word_has_even_parity(self):
        assert _parity64(0) == 0

    def test_single_bit_has_odd_parity(self):
        for b in range(64):
            assert _parity64(1 << b) == 1

    def test_two_bits_have_even_parity(self):
        assert _parity64(0b11) == 0
        assert _parity64((1 << 63) | 1) == 0

    @given(WORDS)
    def test_matches_popcount(self, word):
        assert _parity64(word) == bin(word).count("1") % 2


class TestEncode:
    def test_check_bits_per_word(self, codec):
        assert codec.check_bits_per_word == 1

    def test_encode_is_zero_or_one(self, codec):
        assert codec.encode(0) in (0, 1)
        assert codec.encode(WORD_MASK) == 0  # 64 ones -> even

    def test_encode_rejects_oversized_word(self, codec):
        with pytest.raises(CodewordError):
            codec.encode(1 << 64)

    def test_encode_rejects_negative_word(self, codec):
        with pytest.raises(CodewordError):
            codec.encode(-1)


class TestCheck:
    @given(WORDS)
    def test_clean_word_passes(self, word):
        codec = ParityCodec()
        result = codec.check(word, codec.encode(word))
        assert result.outcome is CheckOutcome.OK
        assert result.data == word

    @given(WORDS, BITS)
    def test_single_flip_detected(self, word, bit):
        codec = ParityCodec()
        check = codec.encode(word)
        result = codec.check(word ^ (1 << bit), check)
        assert result.outcome is CheckOutcome.DETECTED

    @given(WORDS, BITS, BITS)
    def test_double_flip_escapes_parity(self, word, b1, b2):
        """Parity misses any even number of flips — by construction."""
        codec = ParityCodec()
        check = codec.encode(word)
        corrupted = word ^ (1 << b1) ^ (1 << b2)
        result = codec.check(corrupted, check)
        if b1 == b2:
            assert result.outcome is CheckOutcome.OK  # flips cancel
        else:
            assert result.outcome is CheckOutcome.OK  # undetectable

    @given(WORDS)
    def test_check_bit_flip_detected(self, word):
        codec = ParityCodec()
        check = codec.encode(word)
        result = codec.check(word, check ^ 1)
        assert result.outcome is CheckOutcome.DETECTED

    def test_check_rejects_bad_check_bits(self, codec):
        with pytest.raises(CodewordError):
            codec.check(0, 2)

    def test_detected_result_flags_error(self, codec):
        result = codec.check(1, 0)
        assert result.outcome.is_error_signalled
        assert not result.ok


class TestByteParityArray:
    """The ndarray view the vectorized injection kernel gathers from."""

    def test_matches_the_tuple_table_exactly(self):
        numpy = pytest.importorskip("numpy")
        from repro.ecc.parity import BYTE_PARITY, byte_parity_array

        array = byte_parity_array()
        assert array.shape == (256,)
        assert array.dtype == numpy.uint8
        assert tuple(array.tolist()) == BYTE_PARITY

    def test_view_is_read_only_and_cached(self):
        numpy = pytest.importorskip("numpy")
        from repro.ecc.parity import byte_parity_array

        array = byte_parity_array()
        with pytest.raises(ValueError):
            array[0] = 1
        assert byte_parity_array() is array

    @given(WORDS)
    def test_gathered_byte_parities_fold_to_word_parity(self, word):
        numpy = pytest.importorskip("numpy")
        from repro.ecc.parity import byte_parity_array

        array = byte_parity_array()
        values = [(word >> (8 * k)) & 0xFF for k in range(8)]
        assert int(numpy.bitwise_xor.reduce(array[values])) == _parity64(word)
