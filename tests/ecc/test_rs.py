"""The RS(10,8) symbol codec: exhaustive single-symbol correction.

The guarantee is symbol-granular: *any* error confined to one byte
symbol — 1 to 8 flipped bits — corrects exactly, verified exhaustively
(10 positions × 255 nonzero symbol errors).  Distance 3 means
double-symbol errors are *not* guaranteed detected; the honest
contract pinned here is that they never silently pass as OK — they
either report DETECTED or miscorrect visibly (CORRECTED with wrong
data), and the miscorrection fraction stays a small minority.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policy import (
    LineProtection,
    ProtectionDomain,
    RecoveryAction,
    UniformEccPolicy,
)
from repro.ecc import CheckOutcome, RsSymbolCodec, get_codec
from repro.ecc.codec import WORD_MASK

WORDS = st.integers(min_value=0, max_value=WORD_MASK)


def corrupt_symbol(word: int, check: int, position: int, error: int):
    """XOR ``error`` into the byte symbol at ``position`` (0..9)."""
    if position < 8:
        return word ^ (error << (8 * position)), check
    return word, check ^ (error << (8 * (position - 8)))


@pytest.fixture
def codec():
    return RsSymbolCodec()


class TestConstruction:
    def test_registered(self):
        assert isinstance(get_codec("rs-symbol"), RsSymbolCodec)

    def test_geometry(self, codec):
        assert codec.check_bits_per_word == 16
        assert codec.corrects

    @given(WORDS)
    def test_encode_satisfies_both_parity_checks(self, word):
        codec = RsSymbolCodec()
        check = codec.encode(word)
        assert codec.check(word, check).outcome is CheckOutcome.OK


class TestExhaustiveSingleSymbol:
    WORD = 0x0123_4567_89AB_CDEF

    def test_every_single_symbol_error_corrected(self, codec):
        """All 10 positions × 255 nonzero byte errors repair exactly."""
        check = codec.encode(self.WORD)
        for position in range(10):
            for error in range(1, 256):
                w, c = corrupt_symbol(self.WORD, check, position, error)
                result = codec.check(w, c)
                assert result.outcome is CheckOutcome.CORRECTED
                assert result.data == self.WORD

    def test_burst_inside_one_byte_is_one_symbol(self, codec):
        """An 8-bit adjacent burst aligned to a byte corrects — the
        scenario-pack motivation for this code."""
        check = codec.encode(self.WORD)
        w = self.WORD ^ (0xFF << 24)
        result = codec.check(w, check)
        assert result.outcome is CheckOutcome.CORRECTED
        assert result.data == self.WORD


class TestDoubleSymbol:
    WORD = 0xFEDC_BA98_7654_3210

    def test_double_symbol_never_silently_ok(self, codec):
        """Sampled double-symbol errors: DETECTED or a *visible*
        miscorrection, never OK; miscorrection stays a small tail."""
        check = codec.encode(self.WORD)
        rng = random.Random(2)
        miscorrected = 0
        trials = 3000
        for _ in range(trials):
            p1, p2 = rng.sample(range(10), 2)
            e1 = rng.randrange(1, 256)
            e2 = rng.randrange(1, 256)
            w, c = corrupt_symbol(self.WORD, check, p1, e1)
            w, c = corrupt_symbol(w, c, p2, e2)
            result = codec.check(w, c)
            assert result.outcome is not CheckOutcome.OK
            if result.outcome is CheckOutcome.CORRECTED:
                assert result.data != self.WORD  # visible, not silent
                miscorrected += 1
        # d=3: some miscorrection is unavoidable, but it must stay a
        # small minority (measured ~3%; bound leaves slack).
        assert miscorrected / trials < 0.10


class TestAgainstLiveLineProtection:
    def _line(self):
        return LineProtection(
            UniformEccPolicy(),
            bytes(range(64)),
            codecs={ProtectionDomain.ECC: "rs-symbol"},
        )

    def test_byte_confined_burst_corrects_in_place(self):
        line = self._line()
        line.write(bytes(range(64)))
        for bit in range(8):  # whole byte 20 wrecked: one symbol
            line.flip(20, bit)
        action, data = line.access()
        assert action is RecoveryAction.CORRECTED_IN_PLACE
        assert data == line.golden

    def test_exhaustive_single_byte_errors_on_live_line(self):
        """Every nonzero error in one stored byte corrects through the
        full line decode path."""
        for error in range(1, 256):
            line = self._line()
            line.write(bytes(range(64)))
            for bit in range(8):
                if error >> bit & 1:
                    line.flip(36, bit)
            action, data = line.access()
            assert action is RecoveryAction.CORRECTED_IN_PLACE
            assert data == line.golden

    def test_straddling_burst_is_never_silent_on_dirty_line(self):
        """A 4-bit burst across a byte boundary (two symbols): data
        loss or a repair back to golden — pinned as not-SDC for this
        particular pattern."""
        line = self._line()
        line.write(bytes(range(64)))
        line.flip(21, 6)
        line.flip(21, 7)
        line.flip(22, 0)
        line.flip(22, 1)
        action, _ = line.access()
        assert action in (
            RecoveryAction.DATA_LOSS,
            RecoveryAction.SILENT_CORRUPTION,
        )
        # This specific straddle is detected, not miscorrected.
        assert action is RecoveryAction.DATA_LOSS
