"""Tests for interleaved parity and burst (multi-bit-upset) injection."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import (
    CheckOutcome,
    FaultInjector,
    InterleavedParityCodec,
    ParityCodec,
    SecDedCodec,
)
from repro.ecc.codec import WORD_MASK, CodewordError

WORDS = st.integers(min_value=0, max_value=WORD_MASK)


class TestInterleavedConstruction:
    def test_check_bits_match_ways(self):
        assert InterleavedParityCodec(ways=8).check_bits_per_word == 8
        assert InterleavedParityCodec(ways=4).check_bits_per_word == 4

    def test_ways_validated(self):
        with pytest.raises(ValueError):
            InterleavedParityCodec(ways=0)
        with pytest.raises(ValueError):
            InterleavedParityCodec(ways=65)

    def test_ways_one_equals_plain_parity(self):
        plain, inter = ParityCodec(), InterleavedParityCodec(ways=1)
        for word in (0, 1, 0xDEADBEEF, WORD_MASK):
            assert plain.encode(word) == inter.encode(word)


class TestInterleavedDetection:
    @given(WORDS)
    def test_clean_word_passes(self, word):
        codec = InterleavedParityCodec(8)
        assert codec.check(word, codec.encode(word)).ok

    @given(WORDS, st.integers(0, 63))
    def test_single_flip_detected(self, word, bit):
        codec = InterleavedParityCodec(8)
        check = codec.encode(word)
        result = codec.check(word ^ (1 << bit), check)
        assert result.outcome is CheckOutcome.DETECTED

    @given(WORDS, st.integers(0, 56), st.integers(2, 8))
    @settings(max_examples=200)
    def test_any_burst_up_to_ways_detected(self, word, start, length):
        """Every <=8-adjacent-bit burst hits distinct parity domains."""
        codec = InterleavedParityCodec(8)
        check = codec.encode(word)
        corrupted = word
        for b in range(start, start + length):
            corrupted ^= 1 << b
        result = codec.check(corrupted, check)
        assert result.outcome is CheckOutcome.DETECTED

    def test_plain_parity_misses_even_bursts(self):
        """The contrast: 1-bit parity is blind to 2-adjacent flips."""
        codec = ParityCodec()
        word = 0x123456789ABCDEF0
        check = codec.encode(word)
        corrupted = word ^ 0b11  # 2-bit burst
        assert codec.check(corrupted, check).outcome is CheckOutcome.OK

    def test_burst_of_ways_plus_one_can_escape(self):
        """A 16-bit burst puts 2 flips in every domain of an 8-way code."""
        codec = InterleavedParityCodec(8)
        word = 0
        check = codec.encode(word)
        corrupted = word ^ ((1 << 16) - 1)  # 16 adjacent flips
        assert codec.check(corrupted, check).outcome is CheckOutcome.OK


class TestBurstInjection:
    def test_burst_length_validated(self):
        inj = FaultInjector(ParityCodec(), seed=0)
        with pytest.raises(CodewordError):
            inj.inject_burst(0, 0)
        with pytest.raises(CodewordError):
            inj.inject_burst(0, 65)

    def test_interleaved_detects_all_small_bursts(self):
        inj = FaultInjector(InterleavedParityCodec(8), seed=1)
        for length in (2, 4, 8):
            stats = inj.campaign(200, length, burst=True)
            assert stats.rate(CheckOutcome.DETECTED) == 1.0, length

    def test_plain_parity_misses_even_burst_campaign(self):
        inj = FaultInjector(ParityCodec(), seed=2)
        stats = inj.campaign(200, 2, burst=True)
        assert stats.rate(CheckOutcome.UNDETECTED) == 1.0

    def test_secded_on_bursts(self):
        """SECDED detects 2-bursts but can be fooled by longer ones."""
        inj = FaultInjector(SecDedCodec(), seed=3)
        two = inj.campaign(200, 2, burst=True)
        assert two.rate(CheckOutcome.DETECTED) == 1.0
        four = inj.campaign(300, 4, burst=True)
        # 4-bit bursts may miscorrect or slip through: never silently OK
        # *and* repaired correctly, but UNDETECTED occurs.
        assert four.rate(CheckOutcome.CORRECTED) == 0.0

    def test_burst_deterministic(self):
        a = FaultInjector(SecDedCodec(), seed=9).campaign(100, 3, burst=True)
        b = FaultInjector(SecDedCodec(), seed=9).campaign(100, 3, burst=True)
        assert a.by_outcome == b.by_outcome
