"""The DECTED codec: exhaustive double correction, triple detection.

The distance-6 contract is cheap enough to verify *exhaustively* over
the 79-bit codeword (64 data + 14 BCH + 1 parity positions): every
weight-1 and weight-2 error pattern must decode back to the original
word, and no sampled weight-3 pattern may miscorrect — distance 6
guarantees detection, never aliasing into the correctable ball.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policy import (
    LineProtection,
    ProtectionDomain,
    RecoveryAction,
    UniformEccPolicy,
)
from repro.ecc import CheckOutcome, DecTedCodec, get_codec
from repro.ecc.codec import WORD_MASK
from repro.ecc.dected import _DECODE, encode_word_dected

WORDS = st.integers(min_value=0, max_value=WORD_MASK)
#: Codeword positions: 0..63 data, 64..77 BCH remainder, 78 parity.
CODE_BITS = 79


def corrupt(word: int, check: int, bit: int):
    if bit < 64:
        return word ^ (1 << bit), check
    return word, check ^ (1 << (bit - 64))


@pytest.fixture
def codec():
    return DecTedCodec()


class TestConstruction:
    def test_registered(self):
        assert isinstance(get_codec("dected"), DecTedCodec)

    def test_geometry(self, codec):
        assert codec.check_bits_per_word == 15
        assert codec.corrects

    def test_decode_table_covers_all_weight_le2_patterns(self):
        # 79 singles + C(79,2) doubles, all distinct by distance 6.
        assert len(_DECODE) == 79 + 79 * 78 // 2

    def test_table_encode_matches_method(self, codec):
        rng = random.Random(0)
        for _ in range(200):
            w = rng.getrandbits(64)
            assert codec.encode(w) == encode_word_dected(w)


class TestExhaustiveContract:
    """Every weight ≤ 2 pattern corrects; weight-3 never miscorrects."""

    WORD = 0xDEADBEEF_CAFEF00D

    def test_clean_word_is_ok(self, codec):
        check = codec.encode(self.WORD)
        result = codec.check(self.WORD, check)
        assert result.outcome is CheckOutcome.OK
        assert result.data == self.WORD

    def test_every_single_error_corrected(self, codec):
        check = codec.encode(self.WORD)
        for bit in range(CODE_BITS):
            w, c = corrupt(self.WORD, check, bit)
            result = codec.check(w, c)
            assert result.outcome is CheckOutcome.CORRECTED
            assert result.data == self.WORD

    def test_every_double_error_corrected(self, codec):
        check = codec.encode(self.WORD)
        for a in range(CODE_BITS):
            for b in range(a + 1, CODE_BITS):
                w, c = corrupt(*corrupt(self.WORD, check, a), b)
                result = codec.check(w, c)
                assert result.outcome is CheckOutcome.CORRECTED
                assert result.data == self.WORD

    def test_sampled_triple_errors_detected_never_miscorrected(self, codec):
        check = codec.encode(self.WORD)
        rng = random.Random(1)
        for _ in range(2000):
            bits = rng.sample(range(CODE_BITS), 3)
            w, c = self.WORD, check
            for bit in bits:
                w, c = corrupt(w, c, bit)
            result = codec.check(w, c)
            assert result.outcome is CheckOutcome.DETECTED

    @given(WORDS)
    def test_linearity(self, word):
        """check(w ^ e, c ^ ec) sees only the error pattern (GF(2))."""
        codec = DecTedCodec()
        assert codec.encode(word) ^ codec.encode(0) == encode_word_dected(
            word
        ) ^ encode_word_dected(0)
        # The check difference of an error pattern is its own encode
        # contribution: decode of (w ^ e, check(w)) matches decode of
        # (e, check(0) = 0) shifted by w.
        e = 0b101 << 7
        r_w = codec.check(word ^ e, codec.encode(word))
        r_0 = codec.check(e, 0)
        assert r_w.outcome is r_0.outcome


class TestAgainstLiveLineProtection:
    """The codec's word-level verdicts drive real line-level recovery."""

    def _line(self, payload=bytes(range(64))):
        return LineProtection(
            UniformEccPolicy(),
            payload,
            codecs={ProtectionDomain.ECC: "dected"},
        )

    def test_double_flip_in_one_word_corrects_in_place(self):
        line = self._line()
        line.write(bytes(range(64)))  # dirty: ECC active
        line.flip(8, 0)
        line.flip(9, 7)  # two flips, same 64-bit word
        action, data = line.access()
        assert action is RecoveryAction.CORRECTED_IN_PLACE
        assert data == line.golden

    def test_triple_flip_in_one_word_is_data_loss_not_sdc(self):
        line = self._line()
        line.write(bytes(range(64)))
        for bit in (0, 3, 5):
            line.flip(16, bit)
        action, _ = line.access()
        assert action is RecoveryAction.DATA_LOSS

    def test_exhaustive_word_doubles_match_codec_verdict(self):
        """Every double-bit pattern within the first stored word: the
        live line decode repairs it, agreeing with the bare codec."""
        payload = bytes(range(64))
        for a in range(64):
            for b in range(a + 1, 64):
                line = self._line()
                line.write(payload)
                line.flip(a // 8, a % 8)
                line.flip(b // 8, b % 8)
                action, data = line.access()
                assert action is RecoveryAction.CORRECTED_IN_PLACE
                assert data == line.golden
