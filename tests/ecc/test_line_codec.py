"""Tests for whole-line encoding (LineCodec over parity and SECDED)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import CheckOutcome, LineCodec, ParityCodec, SecDedCodec
from repro.ecc.codec import CodewordError

PAYLOADS = st.binary(min_size=64, max_size=64)


@pytest.fixture
def secded_line():
    return LineCodec(SecDedCodec(), line_bytes=64)


@pytest.fixture
def parity_line():
    return LineCodec(ParityCodec(), line_bytes=64)


class TestGeometry:
    def test_words_per_line(self, secded_line):
        assert secded_line.words_per_line == 8

    def test_check_bits_per_line_secded(self, secded_line):
        # 8 check bits per word x 8 words = 64 bits = 12.5% of 512.
        assert secded_line.check_bits_per_line == 64

    def test_check_bits_per_line_parity(self, parity_line):
        assert parity_line.check_bits_per_line == 8

    def test_rejects_unaligned_line_size(self):
        with pytest.raises(CodewordError):
            LineCodec(ParityCodec(), line_bytes=60)

    def test_other_line_sizes(self):
        lc = LineCodec(SecDedCodec(), line_bytes=32)
        assert lc.words_per_line == 4


class TestSplitJoin:
    @given(PAYLOADS)
    def test_roundtrip(self, payload):
        lc = LineCodec(ParityCodec(), 64)
        assert lc.join_line(lc.split_line(payload)) == payload

    def test_split_is_little_endian(self, parity_line):
        payload = bytes([1] + [0] * 63)
        words = parity_line.split_line(payload)
        assert words[0] == 1
        assert words[1:] == [0] * 7

    def test_split_rejects_wrong_size(self, parity_line):
        with pytest.raises(CodewordError):
            parity_line.split_line(b"\x00" * 63)

    def test_join_rejects_wrong_count(self, parity_line):
        with pytest.raises(CodewordError):
            parity_line.join_line([0] * 7)


class TestCheckLine:
    @given(PAYLOADS)
    def test_clean_line_ok(self, payload):
        lc = LineCodec(SecDedCodec(), 64)
        worst, repaired, results = lc.check_line(payload, lc.encode_line(payload))
        assert worst is CheckOutcome.OK
        assert repaired == payload
        assert len(results) == 8

    @given(PAYLOADS, st.integers(0, 63), st.integers(0, 7))
    @settings(max_examples=200)
    def test_single_flip_corrected_by_secded(self, payload, byte, bit):
        lc = LineCodec(SecDedCodec(), 64)
        checks = lc.encode_line(payload)
        bad = bytearray(payload)
        bad[byte] ^= 1 << bit
        worst, repaired, _ = lc.check_line(bytes(bad), checks)
        assert worst is CheckOutcome.CORRECTED
        assert repaired == payload

    def test_flips_in_two_words_both_corrected(self, secded_line):
        payload = bytes(range(64))
        checks = secded_line.encode_line(payload)
        bad = bytearray(payload)
        bad[0] ^= 1  # word 0
        bad[60] ^= 0x80  # word 7
        worst, repaired, _ = secded_line.check_line(bytes(bad), checks)
        assert worst is CheckOutcome.CORRECTED
        assert repaired == payload

    def test_double_flip_same_word_detected(self, secded_line):
        payload = bytes(64)
        checks = secded_line.encode_line(payload)
        bad = bytearray(payload)
        bad[0] ^= 0b11  # two bits of word 0
        worst, repaired, _ = secded_line.check_line(bytes(bad), checks)
        assert worst is CheckOutcome.DETECTED

    def test_detected_beats_corrected_in_severity(self, secded_line):
        payload = bytes(64)
        checks = secded_line.encode_line(payload)
        bad = bytearray(payload)
        bad[0] ^= 1  # single flip, word 0 -> corrected
        bad[8] ^= 0b11  # double flip, word 1 -> detected
        worst, _, _ = secded_line.check_line(bytes(bad), checks)
        assert worst is CheckOutcome.DETECTED

    def test_parity_detects_but_does_not_repair(self, parity_line):
        payload = bytes(64)
        checks = parity_line.encode_line(payload)
        bad = bytearray(payload)
        bad[5] ^= 4
        worst, repaired, _ = parity_line.check_line(bytes(bad), checks)
        assert worst is CheckOutcome.DETECTED
        assert repaired == bytes(bad)  # parity cannot fix anything

    def test_wrong_check_count_rejected(self, parity_line):
        with pytest.raises(CodewordError):
            parity_line.check_line(bytes(64), [0] * 7)
