"""Tests for structured event tracing and its JSONL schema."""

import pytest

from repro.telemetry.tracing import (
    EVENT_FIELDS,
    EventTracer,
    TraceSchemaError,
    load_jsonl,
    validate_event,
)


class TestValidateEvent:
    def good(self):
        return {"type": "writeback", "cycle": 5, "cache": "l2", "set": 1,
                "way": 0, "addr": 64, "reason": "cleaning"}

    def test_good_event_passes(self):
        validate_event(self.good())

    def test_unknown_type_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event({"type": "nope", "cycle": 0})

    def test_missing_field_rejected(self):
        e = self.good()
        del e["addr"]
        with pytest.raises(TraceSchemaError):
            validate_event(e)

    def test_extra_field_rejected(self):
        e = self.good()
        e["color"] = "red"
        with pytest.raises(TraceSchemaError):
            validate_event(e)

    def test_wrong_type_rejected(self):
        e = self.good()
        e["set"] = "one"
        with pytest.raises(TraceSchemaError):
            validate_event(e)

    def test_bool_is_not_an_int(self):
        e = self.good()
        e["way"] = True
        with pytest.raises(TraceSchemaError):
            validate_event(e)

    def test_negative_cycle_rejected(self):
        e = self.good()
        e["cycle"] = -1
        with pytest.raises(TraceSchemaError):
            validate_event(e)

    def test_unknown_writeback_reason_rejected(self):
        e = self.good()
        e["reason"] = "gremlins"
        with pytest.raises(TraceSchemaError):
            validate_event(e)


class TestEventTracer:
    def test_emit_counts_and_events(self):
        tr = EventTracer()
        tr.emit("ecc_claim", 3, cache="l2", set=0, way=1)
        assert tr.counts == {"ecc_claim": 1}
        assert tr.events()[0]["cycle"] == 3

    def test_ring_capacity_drops_oldest(self):
        tr = EventTracer(capacity=3)
        for i in range(5):
            tr.emit("ecc_claim", i, cache="l2", set=0, way=0)
        assert len(tr) == 3
        assert tr.dropped == 2
        assert tr.counts["ecc_claim"] == 5  # totals keep counting
        assert [e["cycle"] for e in tr.events()] == [2, 3, 4]

    def test_type_filter(self):
        tr = EventTracer(types=["writeback"])
        tr.emit("ecc_claim", 0, cache="l2", set=0, way=0)
        assert len(tr) == 0
        with pytest.raises(ValueError):
            EventTracer(types=["martian"])

    def test_disabled_tracer_records_nothing(self):
        tr = EventTracer()
        tr.enabled = False
        tr.emit("ecc_claim", 0, cache="l2", set=0, way=0)
        assert len(tr) == 0

    def test_clear(self):
        tr = EventTracer()
        tr.emit("ecc_claim", 0, cache="l2", set=0, way=0)
        tr.clear()
        assert len(tr) == 0 and tr.counts == {} and tr.dropped == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_summary_mentions_counts(self):
        tr = EventTracer()
        tr.emit("ecc_claim", 0, cache="l2", set=0, way=0)
        assert "ecc_claim=1" in tr.summary()


class TestRealRunSchema:
    """Every event a real simulation emits must conform to the schema."""

    def _run(self, tracer):
        from repro.core import ProtectionConfig
        from repro.experiments import RunConfig
        from repro.experiments.runner import run_refs

        config = RunConfig(n_refs=6_000, warmup_refs=2_000)
        protection = ProtectionConfig(cleaning_interval=1 << 16,
                                      ecc_entries_per_set=1)
        return run_refs("swim", protection, config, tracer=tracer)

    def test_emitted_events_validate(self):
        tracer = EventTracer()
        self._run(tracer)
        events = tracer.events()
        assert events, "a protected run must emit events"
        for event in events:
            validate_event(event)
        # The scheme's characteristic events all appear.
        assert {"dirty_transition", "writeback", "ecc_claim"} <= set(
            tracer.counts
        )

    def test_jsonl_roundtrip_validates(self, tmp_path):
        tracer = EventTracer()
        self._run(tracer)
        path = tmp_path / "trace.jsonl"
        written = tracer.export_jsonl(path)
        assert written == len(tracer)
        loaded = load_jsonl(path)
        assert loaded == tracer.events()
        for event in loaded:
            validate_event(event)

    def test_jsonl_against_jsonschema(self, tmp_path):
        """Cross-check our validator against the jsonschema library."""
        jsonschema = pytest.importorskip("jsonschema")

        tracer = EventTracer()
        self._run(tracer)
        type_map = {int: "integer", str: "string", bool: "boolean"}
        schemas = {
            etype: {
                "type": "object",
                "properties": {
                    "type": {"const": etype},
                    "cycle": {"type": "integer", "minimum": 0},
                    **{
                        name: {"type": type_map[t]}
                        for name, t in fields.items()
                    },
                },
                "required": ["type", "cycle", *fields],
                "additionalProperties": False,
            }
            for etype, fields in EVENT_FIELDS.items()
        }
        for event in tracer.events():
            jsonschema.validate(event, schemas[event["type"]])

    def test_injection_campaign_events_validate(self):
        from repro.ecc import FaultInjector, SecDedCodec

        tracer = EventTracer()
        injector = FaultInjector(SecDedCodec(), seed=3, tracer=tracer)
        injector.campaign(25, 2)
        assert tracer.counts == {"error_outcome": 25}
        for event in tracer.events():
            validate_event(event)
