"""Tests for the metrics registry and the StatsSource contract."""

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsSource,
    StatsSourceMixin,
    flatten_snapshot,
    mean_snapshots,
)


class TestStatsSourceProtocol:
    def test_every_component_stats_class_conforms(self):
        """The six stats classes (and the CPU's two) satisfy the protocol."""
        from repro.cache.hierarchy import HierarchyStats
        from repro.cache.mainmem import MemoryStats
        from repro.cache.mshr import MshrStats
        from repro.cache.stats import CacheStats
        from repro.cache.write_buffer import WriteBufferStats
        from repro.core.ecc_array import EccArrayStats
        from repro.cpu.branch import BranchStats
        from repro.cpu.tlb import TlbStats

        for cls in (CacheStats, MshrStats, WriteBufferStats, EccArrayStats,
                    MemoryStats, HierarchyStats, BranchStats, TlbStats):
            obj = cls()
            assert isinstance(obj, StatsSource), cls.__name__
            d = obj.as_dict()
            assert d and all(isinstance(v, (int, float)) for v in d.values())
            assert obj.labels.get("component")

    def test_mixin_reset_restores_defaults(self):
        from repro.cache.stats import CacheStats

        s = CacheStats()
        s.read_hits = 7
        s.fills = 3
        s.reset(123)
        assert s.read_hits == 0
        assert s.fills == 0

    def test_mixin_as_dict_enumerates_fields(self):
        from repro.cache.mshr import MshrStats

        s = MshrStats()
        s.allocations = 5
        assert s.as_dict()["allocations"] == 5


class _FakeSource(StatsSourceMixin):
    def __init__(self):
        self.value = 0
        self.reset_cycles = []

    labels = {"component": "fake"}

    def as_dict(self):
        return {"value": self.value}

    def reset(self, cycle=0):
        self.value = 0
        self.reset_cycles.append(cycle)


class TestRegistry:
    def test_register_snapshot_reset(self):
        reg = MetricsRegistry()
        src = reg.register_source("fake", _FakeSource())
        src.value = 9
        assert reg.snapshot() == {"fake": {"value": 9}}
        reg.reset(42)
        assert src.value == 0
        assert src.reset_cycles == [42]

    def test_duplicate_registration_rejected(self):
        reg = MetricsRegistry()
        reg.register_source("fake", _FakeSource())
        with pytest.raises(ValueError):
            reg.register_source("fake", _FakeSource())

    def test_metrics_group_reserved(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.register_source("metrics", _FakeSource())

    def test_instruments_get_or_create_and_snapshot(self):
        reg = MetricsRegistry()
        c = reg.counter("events")
        assert reg.counter("events") is c
        c.inc(3)
        reg.gauge("level").set(0.5)
        reg.histogram("lat").observe(7)
        snap = reg.snapshot()
        assert snap["metrics"]["events"] == 3
        assert snap["metrics"]["level"] == 0.5
        assert snap["metrics"]["lat"]["count"] == 1
        reg.reset()
        assert reg.counter("events").value == 0

    def test_instrument_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_on_reset_hooks_run(self):
        reg = MetricsRegistry()
        seen = []
        reg.on_reset(seen.append)
        reg.reset(17)
        assert seen == [17]

    def test_flatten(self):
        reg = MetricsRegistry()
        src = reg.register_source("a", _FakeSource())
        src.value = 2
        reg.histogram("h").observe(1)
        flat = reg.flatten()
        assert flat["a.value"] == 2
        assert flat["metrics.h.count"] == 1

    def test_labels(self):
        reg = MetricsRegistry()
        reg.register_source("a", _FakeSource())
        assert reg.labels() == {"a": {"component": "fake"}}


class TestInstruments:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.as_value() == 5

    def test_gauge(self):
        g = Gauge("g")
        g.set(3.5)
        assert g.as_value() == 3.5

    def test_histogram_buckets_and_mean(self):
        h = Histogram("h")
        for v in (0, 1, 2, 3, 4, 100):
            h.observe(v)
        assert h.count == 6
        assert h.min == 0 and h.max == 100
        assert h.mean == pytest.approx(110 / 6)
        # 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4 -> 3, 100 -> 7
        assert h.buckets == {0: 1, 1: 1, 2: 2, 3: 1, 7: 1}

    def test_histogram_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram("h").observe(-1)


class TestSnapshotHelpers:
    def test_flatten_snapshot(self):
        flat = flatten_snapshot({"g": {"a": 1, "h": {"count": 2}}})
        assert flat == {"g.a": 1, "g.h.count": 2}

    def test_mean_snapshots(self):
        a = {"g": {"x": 2.0, "h": {"count": 4}}}
        b = {"g": {"x": 4.0, "h": {"count": 0}}}
        mean = mean_snapshots([a, b])
        assert mean["g"]["x"] == pytest.approx(3.0)
        assert mean["g"]["h"]["count"] == pytest.approx(2.0)

    def test_mean_snapshots_empty(self):
        assert mean_snapshots([]) == {}


class TestHierarchyRegistry:
    def test_hierarchy_registers_every_component(self):
        from repro.cache.hierarchy import MemoryHierarchy

        h = MemoryHierarchy()
        names = set(h.registry.sources)
        assert {"hierarchy", "l1i", "l1d", "l2", "write_buffer",
                "l1d_mshr", "l1i_mshr", "memory"} <= names

    def test_protected_levels_register_scheme_sources(self):
        from repro.cache.hierarchy import MemoryHierarchy
        from repro.experiments import SCALED_GEOMETRY
        from repro.experiments.runner import build_l2
        from repro.core import ProtectionConfig

        l2 = build_l2(SCALED_GEOMETRY, ProtectionConfig())
        h = MemoryHierarchy(config=SCALED_GEOMETRY.hierarchy_config(), l2=l2)
        names = set(h.registry.sources)
        assert {"l2.ecc_array", "l2.cleaning"} <= names

    def test_snapshot_is_detached_plain_data(self):
        import json

        from repro.cache.hierarchy import MemoryHierarchy

        h = MemoryHierarchy()
        h.load(0x100, 1)
        snap = h.snapshot()
        json.dumps(snap)  # JSON-able
        snap["hierarchy"]["loads"] = 999
        assert h.stats.loads == 1  # mutation does not reach live counters
