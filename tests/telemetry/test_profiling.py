"""Tests for per-phase wall-time profiling."""

import pytest

from repro.telemetry.profiling import PhaseProfiler, PhaseRecord


class TestPhaseRecord:
    def test_events_per_s(self):
        rec = PhaseRecord("p", wall_s=2.0, events=10)
        assert rec.events_per_s == 5.0

    def test_zero_wall_is_safe(self):
        assert PhaseRecord("p").events_per_s == 0.0

    def test_as_dict(self):
        d = PhaseRecord("p", wall_s=1.0, events=3, calls=2).as_dict()
        assert d == {"wall_s": 1.0, "events": 3, "calls": 2,
                     "events_per_s": 3.0}


class TestPhaseProfiler:
    def test_add_accumulates(self):
        p = PhaseProfiler()
        p.add("x", 0.5, events=10)
        p.add("x", 0.5, events=10)
        rec = p.record("x")
        assert rec.wall_s == pytest.approx(1.0)
        assert rec.events == 20
        assert rec.calls == 2

    def test_phase_context_times_block(self):
        p = PhaseProfiler()
        with p.phase("work", events=4) as rec:
            rec.events += 1
        assert rec.calls == 1
        assert rec.events == 5
        assert rec.wall_s >= 0.0
        assert "work" in p

    def test_phase_times_even_on_exception(self):
        p = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with p.phase("bad"):
                raise RuntimeError
        assert p.record("bad").calls == 1

    def test_merge(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        a.add("x", 1.0, 5)
        b.add("x", 2.0, 7)
        b.add("y", 1.0, 1)
        a.merge(b)
        assert a.record("x").wall_s == pytest.approx(3.0)
        assert a.record("x").events == 12
        assert a.record("y").calls == 1

    def test_summary(self):
        p = PhaseProfiler()
        assert "no phases" in p.summary()
        p.add("warmup", 1.0, 1000)
        text = p.summary()
        assert "warmup" in text and "1000 events" in text

    def test_as_dict_orders_by_creation(self):
        p = PhaseProfiler()
        p.add("b", 0.1)
        p.add("a", 0.1)
        assert list(p.as_dict()) == ["b", "a"]


class TestRunnerIntegration:
    def test_run_refs_profiles_phases(self):
        from repro.experiments import RunConfig
        from repro.experiments.runner import run_refs

        profiler = PhaseProfiler()
        config = RunConfig(n_refs=3_000, warmup_refs=1_000)
        out = run_refs("mesa", None, config, profiler=profiler)
        assert profiler.record("warmup").events == 1_000
        assert profiler.record("measure").events == out.refs
        assert profiler.record("measure").wall_s > 0

    def test_sweep_engine_profiles_execution(self):
        from repro.experiments import RunConfig
        from repro.experiments.pool import Cell, SweepEngine

        engine = SweepEngine()
        config = RunConfig(n_refs=2_000, warmup_refs=500)
        engine.run_cells([Cell("mesa", None, config)])
        assert engine.profiler.record("execute").events == 2_000
        assert "cache-lookup" in engine.profiler
        assert "profile:" in engine.summary()
