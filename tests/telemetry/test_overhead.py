"""Tracing must be free when off, and must not change simulation results."""

import time

import pytest

from repro.core import ProtectionConfig
from repro.experiments import RunConfig
from repro.experiments.runner import run_refs
from repro.telemetry import EventTracer

PROTECTION = ProtectionConfig(cleaning_interval=1 << 18,
                              ecc_entries_per_set=1)


class TestTracingTransparency:
    def test_traced_run_matches_untraced_run(self):
        """Attaching a tracer must not perturb any measured quantity."""
        config = RunConfig(n_refs=6_000, warmup_refs=2_000)
        plain = run_refs("swim", PROTECTION, config)
        traced = run_refs("swim", PROTECTION, config, tracer=EventTracer())
        assert traced == plain  # every field, snapshot included


@pytest.mark.slow
class TestOverheadBudget:
    """The ISSUE's budget: tracing *off* costs <= 5% of throughput.

    The guard is a single ``is not None`` attribute test on cold paths
    only, so the real overhead is ~0; the margins here are deliberately
    loose so a loaded CI machine cannot flake the suite.
    """

    def _refs_per_s(self, tracer, repeats=3):
        config = RunConfig(n_refs=40_000, warmup_refs=5_000)
        best = 0.0
        for seed in range(repeats):
            cfg = RunConfig(n_refs=config.n_refs,
                            warmup_refs=config.warmup_refs, seed=seed)
            t0 = time.perf_counter()
            out = run_refs("swim", PROTECTION, cfg, tracer=tracer)
            wall = time.perf_counter() - t0
            best = max(best, out.refs / wall)
        return best

    def test_untraced_throughput_floor(self):
        """Sanity floor far below the ~140k refs/s this machine does."""
        assert self._refs_per_s(tracer=None) > 20_000

    def test_tracing_on_stays_cold_path_cheap(self):
        """Even tracing *on* must not slow the per-reference hot loop.

        Emission happens only on cold paths (write-backs, dirty
        transitions, ECC traffic), so a full ring buffer costs a few
        percent at most; a 2x margin catches an accidental emission in
        ``access()`` (which would multiply the per-reference cost) while
        staying unflakeable on a loaded CI machine.
        """
        base = self._refs_per_s(tracer=None)
        on = self._refs_per_s(tracer=EventTracer())
        assert on > base / 2
