"""Smoke tests: every example script runs to completion.

The heavier examples are trimmed via their module-level knobs where
possible; all are executed through ``runpy`` exactly as a user would run
them, with stdout captured and sanity-checked.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "soft_error_recovery.py",
    "custom_trace.py",
    "quickstart.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), script


def test_soft_error_recovery_output(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["soft_error_recovery.py"])
    runpy.run_path(
        str(EXAMPLES / "soft_error_recovery.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "refetched" in out
    assert "corrected" in out
    assert "data-loss" in out


def test_quickstart_reports_area_saving(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "59% smaller" in out
    assert "protected" in out


def test_all_examples_exist_and_are_documented():
    """Every example has a module docstring and a main() guard."""
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 8
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""')), script
        assert '__name__ == "__main__"' in text, script
