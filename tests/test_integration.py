"""End-to-end integration: the paper's narrative on a fast configuration.

One test class per claim chain, mirroring the paper's Sections 3–5.
These run smaller workloads than the benchmarks (seconds, not minutes)
but exercise every subsystem together: workloads → hierarchy →
protected L2 → statistics, plus codecs → payload recovery.
"""

import pytest

from repro.core import (
    NonUniformPolicy,
    ProtectionConfig,
    UniformEccPolicy,
    conventional_overhead,
    proposed_overhead,
    reduction,
)
from repro.cache.hierarchy import default_l2_config
from repro.experiments import (
    ReliabilityConfig,
    RunConfig,
    compare_policies,
    run_ipc,
    run_refs,
)

CONFIG = RunConfig(n_refs=25_000, warmup_refs=8_000)
OUTLIERS = ("mesa", "parser")
STREAMERS = ("swim", "mcf")


class TestSection3_1_NonUniformPremise:
    """Not all lines are dirty — so uniform ECC is wasteful."""

    def test_substantial_clean_population(self):
        """Streaming benchmarks keep most of the cache clean."""
        for name in STREAMERS:
            out = run_refs(name, None, CONFIG)
            assert out.dirty_fraction < 0.5, name

    def test_outliers_exist_as_the_paper_says(self):
        """The outliers accumulate clearly more dirty residency than the
        streaming group even at this short trace length (their absolute
        Figure-1 levels need the full bench workload sizes)."""
        streaming_avg = sum(
            run_refs(n, None, CONFIG).dirty_fraction for n in STREAMERS
        ) / len(STREAMERS)
        for name in OUTLIERS:
            out = run_refs(name, None, CONFIG)
            assert out.dirty_fraction > 1.5 * streaming_avg, name


class TestSection3_2_Cleaning:
    """Cleaning reduces dirty lines without much extra traffic."""

    @pytest.mark.parametrize("name", OUTLIERS)
    def test_cleaning_reduces_dirty_residency(self, name):
        base = run_refs(name, None, CONFIG)
        cleaned = run_refs(
            name,
            ProtectionConfig(cleaning_interval=1 << 18,
                             ecc_entries_per_set=None),
            CONFIG,
        )
        assert cleaned.dirty_fraction < 0.6 * base.dirty_fraction

    @pytest.mark.parametrize("name", STREAMERS)
    def test_traffic_stays_near_baseline_at_1m(self, name):
        """For streaming codes the cleaning write-back replaces the
        eventual replacement write-back."""
        base = run_refs(name, None, CONFIG)
        cleaned = run_refs(
            name,
            ProtectionConfig(cleaning_interval=1 << 20,
                             ecc_entries_per_set=None),
            CONFIG,
        )
        assert cleaned.writeback_fraction <= base.writeback_fraction * 1.25


class TestSection3_3_EccArray:
    """The shared array bounds dirty lines structurally."""

    @pytest.mark.parametrize("name", OUTLIERS + STREAMERS)
    def test_quarter_cap_holds(self, name):
        out = run_refs(
            name,
            ProtectionConfig(cleaning_interval=1 << 20,
                             ecc_entries_per_set=1),
            CONFIG,
        )
        assert out.peak_dirty_fraction <= 0.25 + 1e-9, name

    def test_ecc_eviction_traffic_appears_on_outliers(self):
        out = run_refs(
            "parser",
            ProtectionConfig(cleaning_interval=1 << 20,
                             ecc_entries_per_set=1),
            CONFIG,
        )
        assert out.writeback_split["ECC-WB"] > 0


class TestSection5_2_AreaAndPerformance:
    def test_headline_area_reduction(self):
        l2 = default_l2_config()
        red = reduction(conventional_overhead(l2), proposed_overhead(l2))
        assert red == pytest.approx(0.59, abs=0.005)

    def test_ipc_loss_small(self):
        org = run_ipc("mesa", None, CONFIG, n_insts=40_000)
        ours = run_ipc(
            "mesa",
            ProtectionConfig(cleaning_interval=1 << 20,
                             ecc_entries_per_set=1),
            CONFIG,
            n_insts=40_000,
        )
        loss = (org.ipc - ours.ipc) / org.ipc
        assert abs(loss) < 0.05  # well under any meaningful slowdown


class TestReliabilityStory:
    """Clean lines survive on parity; dirty lines need the ECC."""

    def test_non_uniform_tracks_uniform_ecc(self):
        res = compare_policies(
            [UniformEccPolicy(), NonUniformPolicy()],
            ReliabilityConfig(n_lines=32, n_events=6000, seed=21),
        )
        ours = res["non-uniform"].unrecovered_rate
        conv = res["uniform-ecc"].unrecovered_rate
        assert ours <= conv * 1.5 + 0.02
