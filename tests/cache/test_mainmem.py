"""Tests for the main-memory / split-transaction bus model."""

import pytest

from repro.cache import MainMemory, MemoryConfig


@pytest.fixture
def mem():
    return MainMemory(MemoryConfig(bus_width_bytes=8, latency_cycles=100))


class TestTransferCycles:
    def test_exact_multiple(self):
        assert MemoryConfig().transfer_cycles(64) == 8

    def test_rounds_up(self):
        assert MemoryConfig().transfer_cycles(65) == 9

    def test_small_transfer(self):
        assert MemoryConfig().transfer_cycles(1) == 1


class TestRead:
    def test_uncontended_read_latency(self, mem):
        done = mem.read(cycle=0, size_bytes=64)
        # 8 beats of transfer + 100 cycles access.
        assert done == 108

    def test_reads_queue_behind_each_other(self, mem):
        mem.read(0, 64)
        done2 = mem.read(0, 64)
        assert done2 == 8 + 100 + 8  # starts after first transfer's beats

    def test_queue_delay_recorded(self, mem):
        mem.read(0, 64)
        mem.read(0, 64)
        assert mem.stats.read_queue_cycles == 8

    def test_idle_bus_no_queueing(self, mem):
        mem.read(0, 64)
        done = mem.read(1000, 64)
        assert done == 1108
        assert mem.stats.read_queue_cycles == 0


class TestWrite:
    def test_posted_write_returns_bus_release(self, mem):
        release = mem.write(cycle=0, size_bytes=64)
        assert release == 8  # no access latency charged to the writer

    def test_write_delays_subsequent_read(self, mem):
        """The contention mechanism behind the paper's IPC experiment."""
        mem.write(0, 64)
        done = mem.read(0, 64)
        assert done == 8 + 108

    def test_many_writebacks_stack_up(self, mem):
        for _ in range(10):
            mem.write(0, 64)
        done = mem.read(0, 64)
        assert done == 80 + 108


class TestStats:
    def test_byte_accounting(self, mem):
        mem.read(0, 64)
        mem.write(0, 64)
        mem.write(0, 64)
        assert mem.stats.bytes_read == 64
        assert mem.stats.bytes_written == 128
        assert mem.stats.transactions == 3

    def test_busy_cycles(self, mem):
        mem.read(0, 64)
        mem.write(0, 64)
        assert mem.stats.busy_cycles == 16

    def test_utilization(self, mem):
        mem.read(0, 64)
        assert mem.utilization(16) == pytest.approx(0.5)
        assert mem.utilization(0) == 0.0

    def test_utilization_capped_at_one(self, mem):
        for _ in range(100):
            mem.write(0, 64)
        assert mem.utilization(10) == 1.0
