"""Tests for replacement policies."""

import pytest

from repro.cache import CacheLine, FifoPolicy, LruPolicy, RandomPolicy, make_policy


def make_set(n=4, valid=True):
    lines = []
    for i in range(n):
        line = CacheLine()
        if valid:
            line.fill(tag=i, cycle=0, stamp=i)
        lines.append(line)
    return lines


class TestInvalidPreference:
    @pytest.mark.parametrize("policy", [LruPolicy(), FifoPolicy(), RandomPolicy(0)])
    def test_invalid_way_chosen_first(self, policy):
        ways = make_set(4)
        ways[2].invalidate()
        assert policy.choose_victim(ways) == 2

    @pytest.mark.parametrize("policy", [LruPolicy(), FifoPolicy(), RandomPolicy(0)])
    def test_first_invalid_way_wins(self, policy):
        ways = make_set(4, valid=False)
        assert policy.choose_victim(ways) == 0


class TestLru:
    def test_oldest_stamp_evicted(self):
        ways = make_set(4)
        ways[1].lru_stamp = 100
        ways[3].lru_stamp = 50
        ways[0].lru_stamp = 75
        ways[2].lru_stamp = 60
        assert LruPolicy().choose_victim(ways) == 3

    def test_access_refreshes_stamp(self):
        ways = make_set(4)
        policy = LruPolicy()
        policy.on_access(ways[0], stamp=999)
        assert policy.choose_victim(ways) != 0

    def test_recency_order_respected_over_sequence(self):
        ways = make_set(4)
        policy = LruPolicy()
        for stamp, way in enumerate([2, 0, 3, 1]):
            policy.on_access(ways[way], stamp=10 + stamp)
        assert policy.choose_victim(ways) == 2


class TestFifo:
    def test_earliest_fill_evicted_despite_touches(self):
        ways = make_set(4)  # fifo_stamp = fill order 0..3
        policy = FifoPolicy()
        policy.on_access(ways[0], stamp=1000)  # touch does not move FIFO
        assert policy.choose_victim(ways) == 0


class TestRandom:
    def test_deterministic_for_seed(self):
        ways = make_set(4)
        a = [RandomPolicy(7).choose_victim(ways) for _ in range(20)]
        b = [RandomPolicy(7).choose_victim(ways) for _ in range(20)]
        assert a == b

    def test_in_range(self):
        ways = make_set(4)
        policy = RandomPolicy(1)
        for _ in range(50):
            assert 0 <= policy.choose_victim(ways) < 4


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("FIFO"), FifoPolicy)
        assert isinstance(make_policy("Random"), RandomPolicy)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            make_policy("plru")
