"""Tests for CacheLine state, especially the paper's written-bit rule."""

from repro.cache import CacheLine


class TestFill:
    def test_fill_sets_tag_and_valid(self):
        line = CacheLine()
        line.fill(tag=0x42, cycle=10, stamp=3)
        assert line.valid
        assert line.tag == 0x42
        assert line.fill_cycle == 10

    def test_fill_resets_dirty_and_written(self):
        line = CacheLine()
        line.fill(1, 0, 0)
        line.record_write()
        line.record_write()
        assert line.dirty and line.written
        line.fill(2, 5, 1)
        assert not line.dirty
        assert not line.written

    def test_new_line_is_invalid(self):
        assert not CacheLine().valid


class TestWrittenBitRule:
    """Paper: dirty set on the first write, written on writes beyond it."""

    def test_first_write_sets_dirty_only(self):
        line = CacheLine()
        line.fill(1, 0, 0)
        turned_dirty = line.record_write()
        assert turned_dirty
        assert line.dirty
        assert not line.written

    def test_second_write_sets_written(self):
        line = CacheLine()
        line.fill(1, 0, 0)
        line.record_write()
        turned_dirty = line.record_write()
        assert not turned_dirty
        assert line.dirty
        assert line.written

    def test_written_implies_dirty(self):
        """The paper notes: when written is one, dirty is also one."""
        line = CacheLine()
        line.fill(1, 0, 0)
        for _ in range(5):
            line.record_write()
            if line.written:
                assert line.dirty

    def test_write_after_clean_starts_a_new_generation(self):
        line = CacheLine()
        line.fill(1, 0, 0)
        line.record_write()
        line.record_write()
        # Cleaning logic writes the line back:
        line.dirty = False
        line.written = False
        assert line.record_write()  # dirty again
        assert not line.written  # but write-once so far


class TestInvalidate:
    def test_invalidate_clears_state(self):
        line = CacheLine()
        line.fill(7, 0, 0)
        line.record_write()
        line.invalidate()
        assert not line.valid
        assert not line.dirty
        assert not line.written
