"""Tests for the full memory hierarchy plumbing."""

import pytest

from repro.cache import HierarchyConfig, MemoryHierarchy
from repro.cache.cache import CacheConfig, WritePolicy
from repro.core import ProtectedL2, ProtectionConfig


def tiny_hierarchy(l2=None):
    """A shrunken hierarchy for fast, predictable tests."""
    cfg = HierarchyConfig(
        l1i=CacheConfig(
            "l1i", 1024, 2, 32,
            write_policy=WritePolicy.WRITE_THROUGH, write_allocate=False,
        ),
        l1d=CacheConfig(
            "l1d", 1024, 2, 32,
            write_policy=WritePolicy.WRITE_THROUGH, write_allocate=False,
        ),
        l2=CacheConfig("l2", 8192, 4, 64, hit_latency=10),
        write_buffer_entries=4,
    )
    if l2 is not None:
        return MemoryHierarchy(config=cfg, l2=l2)
    return MemoryHierarchy(config=cfg)


@pytest.fixture
def h():
    return tiny_hierarchy()


class TestLoadPath:
    def test_l1_hit_is_one_cycle(self, h):
        fill = h.load(0x1000, 1)  # miss, fills L1 and L2
        lat = h.load(0x1000, 1 + fill + 1)  # after the fill completes
        assert lat == h.l1d.config.hit_latency

    def test_l1_miss_l2_hit(self, h):
        fill = h.load(0x1000, 1)
        # Same L2 line (64B), different L1 line (32B): L1 miss, L2 hit.
        lat = h.load(0x1020, 1 + fill + 1)
        assert lat == 1 + 10

    def test_load_during_inflight_fill_merges(self, h):
        fill = h.load(0x1000, 1)
        merged = h.load(0x1008, 2)  # same block, fill still in flight
        assert merged == pytest.approx(1 + (1 + fill) - 2)

    def test_cold_miss_goes_to_memory(self, h):
        lat = h.load(0x1000, 1)
        assert lat > 100  # memory latency dominates

    def test_load_counts(self, h):
        h.load(0, 1)
        h.load(0, 2)
        assert h.stats.loads == 2


class TestStorePath:
    def test_store_retires_quickly(self, h):
        lat = h.store(0x2000, 1)
        assert lat == h.l1d.config.hit_latency

    def test_store_never_dirties_l1(self, h):
        h.load(0x2000, 1)
        h.store(0x2000, 2)
        assert h.l1d.dirty.dirty_count == 0

    def test_buffered_store_forwards_to_load(self, h):
        h.store(0x3000, 1)
        lat = h.load(0x3008, 2)  # same L2 block, still in write buffer
        assert lat == h.l1d.config.hit_latency + 1

    def test_buffer_overflow_reaches_l2(self, h):
        for i in range(5):  # 4-entry buffer
            h.store(i * 64, i + 1)
        assert h.l2.stats.write_misses + h.l2.stats.write_hits == 1
        assert h.l2.dirty.dirty_count == 1

    def test_drain_write_buffer_flushes_all(self, h):
        for i in range(3):
            h.store(i * 64, i + 1)
        h.drain_write_buffer(10)
        assert len(h.write_buffer) == 0
        assert h.l2.dirty.dirty_count == 3

    def test_store_coalescing_reduces_l2_writes(self, h):
        for i in range(8):
            h.store(0x4000 + i * 8, i + 1)  # one 64B block
        h.drain_write_buffer(100)
        assert h.l2.stats.write_hits + h.l2.stats.write_misses == 1


class TestIfetchPath:
    def test_ifetch_uses_l1i(self, h):
        fill = h.ifetch(0x400000, 1)
        lat = h.ifetch(0x400000, 1 + fill + 1)
        assert lat == h.l1i.config.hit_latency
        assert h.stats.ifetches == 2

    def test_ifetch_fills_unified_l2(self, h):
        h.ifetch(0x400000, 1)
        assert h.l2.probe(0x400000)


class TestMonotonicClock:
    def test_out_of_order_timestamps_clamped(self, h):
        h.load(0, 100)
        h.load(64, 50)  # earlier timestamp must not break bookkeeping
        assert h.clock == 100

    def test_clock_advances(self, h):
        h.load(0, 5)
        h.load(64, 7)
        assert h.clock == 7


class TestWritebackPropagation:
    def test_l2_dirty_eviction_reaches_memory(self, h):
        # Dirty one L2 set, then storm it with reads to force eviction.
        h.store(0x0, 1)
        h.drain_write_buffer(2)
        before = h.memory.stats.writes
        for i in range(1, 6):
            h.load(i * 2048, 2 + i)  # same L2 set (8KB/4w/64B: 32 sets)
        assert h.memory.stats.writes > before

    def test_protected_l2_cleaning_writes_reach_memory(self):
        l2 = ProtectedL2(
            CacheConfig("l2", 8192, 4, 64, hit_latency=10),
            ProtectionConfig(cleaning_interval=64, ecc_entries_per_set=None),
        )
        h = tiny_hierarchy(l2=l2)
        h.store(0x0, 1)
        h.drain_write_buffer(2)
        assert l2.dirty.dirty_count == 1
        before = h.memory.stats.writes
        # Idle loads elsewhere let the sweep find and clean the line.
        for i in range(200):
            h.load(0x100000 + (i % 4) * 64, 10 + i * 10)
        assert l2.dirty.dirty_count == 0
        assert h.memory.stats.writes > before

    def test_writeback_fraction_metric(self, h):
        assert h.writeback_fraction() == 0.0
        h.store(0, 1)
        assert h.writeback_fraction() == 0.0  # buffered, not written back
