"""Tests for the energy model."""

import pytest

from repro.cache import MemoryHierarchy
from repro.cache.energy import (
    EnergyParams,
    compare_schemes,
    estimate_energy,
)
from repro.experiments import RunConfig, SCALED_GEOMETRY, run_refs
from repro.experiments.runner import _build_hierarchy
from repro.core import ProtectionConfig


def driven_hierarchy(protection=None, n=4000):
    """A hierarchy with some traffic through it."""
    import itertools

    from repro.workloads import get_benchmark, make_ref_stream

    config = RunConfig(n_refs=n, warmup_refs=0)
    h = _build_hierarchy(config, protection)
    stream = make_ref_stream(
        get_benchmark("mesa"), SCALED_GEOMETRY.l2_bytes, seed=0
    )
    cycle = 0
    for ref in itertools.islice(stream, n):
        cycle += 1 + ref.gap
        (h.store if ref.is_write else h.load)(ref.addr, cycle)
    return h


class TestValidation:
    def test_unknown_scheme(self):
        h = MemoryHierarchy()
        with pytest.raises(ValueError):
            estimate_energy(h, "magic")

    def test_bad_dirty_fraction(self):
        h = MemoryHierarchy()
        with pytest.raises(ValueError):
            estimate_energy(h, "proposed", dirty_fraction=1.5)


class TestComponents:
    def test_idle_hierarchy_zero_energy(self):
        h = MemoryHierarchy()
        e = estimate_energy(h, "conventional")
        assert e.total_nj == 0.0

    def test_components_present(self):
        h = driven_hierarchy()
        e = estimate_energy(h, "conventional")
        for key in ("L1 arrays", "L2 array", "off-chip bus", "DRAM",
                    "L2 ECC logic", "L1 parity logic"):
            assert key in e.components
            assert e.components[key] >= 0.0

    def test_rows_end_with_total(self):
        h = driven_hierarchy()
        e = estimate_energy(h, "conventional")
        rows = e.rows()
        assert rows[-1][0] == "total"
        assert rows[-1][1] == pytest.approx(e.total_nj)

    def test_units(self):
        h = driven_hierarchy()
        e = estimate_energy(h, "conventional")
        assert e.total_uj == pytest.approx(e.total_nj / 1000)


class TestSchemeComparison:
    def test_proposed_cuts_coding_energy(self):
        """The paper's scheme does less ECC work at the same traffic."""
        h = driven_hierarchy()
        conv = estimate_energy(h, "conventional")
        prop = estimate_energy(h, "proposed", dirty_fraction=0.3)
        assert (
            prop.components["L2 ECC logic"]
            < conv.components["L2 ECC logic"]
        )
        # Array/bus/DRAM identical on the same hierarchy.
        assert prop.components["DRAM"] == conv.components["DRAM"]

    def test_coding_energy_grows_with_dirty_fraction(self):
        h = driven_hierarchy()
        low = estimate_energy(h, "proposed", dirty_fraction=0.1)
        high = estimate_energy(h, "proposed", dirty_fraction=0.9)
        assert (
            high.components["L2 ECC logic"]
            >= low.components["L2 ECC logic"]
        )

    def test_compare_schemes_end_to_end(self):
        """Full comparison over two real runs of the same workload."""
        org = driven_hierarchy(protection=None)
        protection = ProtectionConfig(
            cleaning_interval=1 << 18, ecc_entries_per_set=1
        )
        ours = driven_hierarchy(protection=protection)
        out = compare_schemes(org, ours, proposed_dirty_fraction=0.2)
        assert set(out) == {"conventional", "proposed"}
        # Coding logic: proposed well below conventional.
        assert (
            out["proposed"].components["L2 ECC logic"]
            < out["conventional"].components["L2 ECC logic"]
        )

    def test_custom_params_scale(self):
        h = driven_hierarchy()
        base = estimate_energy(h, "conventional")
        doubled = estimate_energy(
            h, "conventional",
            params=EnergyParams(dram_access=60.0),
        )
        assert doubled.components["DRAM"] == pytest.approx(
            2 * base.components["DRAM"]
        )
