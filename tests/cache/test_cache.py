"""Tests for the generic set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CacheConfig,
    SetAssociativeCache,
    WritebackReason,
    WritePolicy,
)


def small_config(**kw):
    defaults = dict(
        name="l2",
        size_bytes=4096,
        ways=4,
        line_bytes=64,
        write_policy=WritePolicy.WRITE_BACK,
        write_allocate=True,
    )
    defaults.update(kw)
    return CacheConfig(**defaults)


@pytest.fixture
def cache():
    return SetAssociativeCache(small_config())


class TestConfigValidation:
    def test_geometry(self):
        cfg = small_config()
        assert cfg.n_sets == 16
        assert cfg.n_lines == 64

    def test_non_pow2_line_rejected(self):
        with pytest.raises(ValueError):
            small_config(line_bytes=48)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError):
            small_config(size_bytes=4096 + 64)

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ValueError):
            small_config(size_bytes=3 * 64 * 4, ways=4)


class TestAddressing:
    def test_locate_roundtrip(self, cache):
        for addr in (0, 64, 4096, 0xDEAD00, 0x12345678 & ~63):
            set_idx, tag = cache.locate(addr)
            assert cache.block_addr(set_idx, tag) == addr & ~63

    def test_same_line_same_location(self, cache):
        assert cache.locate(0x100) == cache.locate(0x13F)

    def test_adjacent_lines_adjacent_sets(self, cache):
        s0, _ = cache.locate(0)
        s1, _ = cache.locate(64)
        assert s1 == (s0 + 1) % cache.n_sets


class TestReadPath:
    def test_cold_miss_then_hit(self, cache):
        r1 = cache.access(0x1000, is_write=False, cycle=1)
        assert not r1.hit
        assert r1.fill_addr == 0x1000
        r2 = cache.access(0x1000, is_write=False, cycle=2)
        assert r2.hit
        assert cache.stats.read_misses == 1
        assert cache.stats.read_hits == 1

    def test_fill_addr_is_block_aligned(self, cache):
        r = cache.access(0x1234, is_write=False, cycle=1)
        assert r.fill_addr == 0x1234 & ~63

    def test_probe_does_not_mutate(self, cache):
        assert not cache.probe(0x40)
        assert cache.stats.accesses == 0

    def test_conflict_eviction_lru(self, cache):
        # 5 lines mapping to the same set of a 4-way cache.
        addrs = [0x0 + i * 4096 for i in range(5)]
        for i, a in enumerate(addrs):
            cache.access(a, is_write=False, cycle=i)
        assert not cache.probe(addrs[0])  # LRU victim
        assert all(cache.probe(a) for a in addrs[1:])


class TestWriteBackPath:
    def test_write_makes_line_dirty(self, cache):
        cache.access(0x200, is_write=True, cycle=1)
        assert cache.find_line(0x200).dirty
        assert cache.dirty.dirty_count == 1

    def test_dirty_eviction_emits_writeback(self, cache):
        cache.access(0x0, is_write=True, cycle=1)
        result = None
        for i in range(1, 5):
            result = cache.access(i * 4096, is_write=False, cycle=1 + i)
        assert len(result.writebacks) == 1
        wb = result.writebacks[0]
        assert wb.addr == 0x0
        assert wb.reason is WritebackReason.REPLACEMENT
        assert cache.stats.writebacks_replacement == 1
        assert cache.dirty.dirty_count == 0

    def test_clean_eviction_is_silent(self, cache):
        for i in range(5):
            r = cache.access(i * 4096, is_write=False, cycle=i)
        assert r.writebacks == []

    def test_write_miss_allocates(self, cache):
        r = cache.access(0x300, is_write=True, cycle=1)
        assert not r.hit
        assert r.fill_addr is not None
        assert cache.find_line(0x300).dirty

    def test_rewrite_sets_written_bit(self, cache):
        cache.access(0x40, is_write=True, cycle=1)
        cache.access(0x40, is_write=True, cycle=2)
        line = cache.find_line(0x40)
        assert line.dirty and line.written
        assert cache.dirty.dirty_count == 1  # still one dirty line


class TestWriteThroughPath:
    @pytest.fixture
    def wt(self):
        return SetAssociativeCache(
            small_config(
                write_policy=WritePolicy.WRITE_THROUGH, write_allocate=False
            )
        )

    def test_write_hit_never_dirties(self, wt):
        wt.access(0x80, is_write=False, cycle=1)  # fill
        r = wt.access(0x80, is_write=True, cycle=2)
        assert r.hit and r.wrote_through
        assert not wt.find_line(0x80).dirty
        assert wt.dirty.dirty_count == 0

    def test_write_miss_no_allocate(self, wt):
        r = wt.access(0x80, is_write=True, cycle=1)
        assert not r.hit
        assert r.wrote_through
        assert r.fill_addr is None
        assert not wt.probe(0x80)

    def test_no_writebacks_ever(self, wt):
        import random

        rng = random.Random(0)
        for i in range(2000):
            r = wt.access(rng.randrange(1 << 20), rng.random() < 0.5, i)
            assert r.writebacks == []
        assert wt.stats.writebacks_total == 0


class TestFlush:
    def test_flush_writes_back_all_dirty(self, cache):
        for i in range(6):
            cache.access(i * 64, is_write=True, cycle=i)
        wbs = cache.flush(cycle=100)
        assert len(wbs) == 6
        assert cache.dirty.dirty_count == 0
        assert cache.dirty_line_count() == 0
        assert all(not l.valid for ways in cache.sets for l in ways)

    def test_flush_empty_cache(self, cache):
        assert cache.flush(0) == []


class TestDirtyAccounting:
    @given(
        st.lists(
            st.tuples(st.integers(0, 1 << 16), st.booleans()),
            min_size=1,
            max_size=400,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_integrator_matches_scan(self, ops):
        """Incremental dirty count always equals a full scan."""
        cache = SetAssociativeCache(small_config())
        for cycle, (addr, is_write) in enumerate(ops):
            cache.access(addr, is_write, cycle)
        assert cache.dirty.dirty_count == cache.dirty_line_count()

    def test_writeback_of_clean_line_rejected(self, cache):
        from repro.cache.cache import AccessResult

        cache.access(0, is_write=False, cycle=0)  # clean fill at set 0, way 0
        with pytest.raises(ValueError):
            cache._writeback_line(
                0, 0, 1, AccessResult(hit=True, is_write=False),
                WritebackReason.REPLACEMENT,
            )
