"""Tests for cache statistics and the dirty-residency integrator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache import CacheStats, DirtyIntegrator


class TestCacheStats:
    def test_totals(self):
        s = CacheStats(read_hits=3, read_misses=1, write_hits=2, write_misses=4)
        assert s.accesses == 10
        assert s.hits == 5
        assert s.misses == 5
        assert s.miss_rate == 0.5

    def test_empty_miss_rate(self):
        assert CacheStats().miss_rate == 0.0

    def test_writeback_total_sums_all_causes(self):
        s = CacheStats(
            writebacks_replacement=1,
            writebacks_cleaning=2,
            writebacks_ecc_eviction=3,
            writebacks_eager=4,
        )
        assert s.writebacks_total == 10

    def test_as_dict_is_complete(self):
        d = CacheStats().as_dict()
        assert d["writebacks_cleaning"] == 0
        assert "writebacks_eager" in d
        assert "dirty_episodes" in d
        assert "dirty_episode_cycles" in d
        assert "silent_writes" in d
        assert "elided_ecc_updates" in d
        assert "elided_dirty_transitions" in d
        assert "wb_bytes_raw" in d
        assert "wb_bytes_compressed" in d
        assert len(d) == 18

    def test_as_dict_carries_exposure_counters(self):
        s = CacheStats(dirty_episodes=3, dirty_episode_cycles=450)
        d = s.as_dict()
        assert d["dirty_episodes"] == 3
        assert d["dirty_episode_cycles"] == 450

    def test_mean_dirty_episode(self):
        s = CacheStats(dirty_episodes=4, dirty_episode_cycles=200)
        assert s.mean_dirty_episode_cycles == 50.0
        assert CacheStats().mean_dirty_episode_cycles == 0.0


class TestDirtyIntegrator:
    def test_constant_count_integrates_linearly(self):
        di = DirtyIntegrator(total_lines=100)
        di.add_dirty(0, 10)
        assert di.average_dirty_lines(50) == pytest.approx(10.0)
        assert di.average_dirty_fraction(50) == pytest.approx(0.1)

    def test_step_change_weighted_by_duration(self):
        di = DirtyIntegrator(total_lines=10)
        di.add_dirty(0, 2)  # 2 dirty on [0, 60)
        di.add_dirty(60, 2)  # 4 dirty on [60, 100)
        avg = di.average_dirty_lines(100)
        assert avg == pytest.approx((2 * 60 + 4 * 40) / 100)

    def test_negative_count_rejected(self):
        di = DirtyIntegrator(total_lines=4)
        with pytest.raises(ValueError):
            di.add_dirty(0, -1)

    def test_peak_tracked(self):
        di = DirtyIntegrator(total_lines=10)
        di.add_dirty(0, 3)
        di.add_dirty(5, 4)
        di.add_dirty(9, -6)
        assert di.peak_dirty == 7

    def test_reset_preserves_count_but_clears_area(self):
        di = DirtyIntegrator(total_lines=10)
        di.add_dirty(0, 5)
        di.update(100)
        di.reset(cycle=100, dirty_count=5)
        assert di.area == 0.0
        assert di.average_dirty_lines(200) == pytest.approx(5.0)

    def test_zero_elapsed_returns_current_count(self):
        di = DirtyIntegrator(total_lines=10)
        di.add_dirty(0, 4)
        assert di.average_dirty_lines(0) == 4.0

    def test_update_is_idempotent_for_same_cycle(self):
        di = DirtyIntegrator(total_lines=10)
        di.add_dirty(0, 1)
        di.update(10)
        area = di.area
        di.update(10)
        assert di.area == area

    @given(
        st.lists(
            st.tuples(st.integers(1, 100), st.integers(0, 3)),
            min_size=1,
            max_size=30,
        )
    )
    def test_average_bounded_by_extremes(self, deltas):
        """Time-weighted average always lies within [min, max] count."""
        di = DirtyIntegrator(total_lines=1000)
        cycle, count = 0, 0
        counts = [0]
        for dt, inc in deltas:
            cycle += dt
            di.add_dirty(cycle, inc)
            count += inc
            counts.append(count)
        avg = di.average_dirty_lines(cycle + 10)
        assert min(counts) - 1e-9 <= avg <= max(counts) + 1e-9
