"""Tests for the coalescing write buffer."""

import pytest

from repro.cache import WriteBuffer


@pytest.fixture
def wb():
    return WriteBuffer(entries=4, block_bytes=64)


class TestValidation:
    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            WriteBuffer(entries=0)

    def test_non_pow2_block_rejected(self):
        with pytest.raises(ValueError):
            WriteBuffer(block_bytes=48)


class TestCoalescing:
    def test_same_block_coalesces(self, wb):
        assert wb.push(0x100) is None
        assert wb.push(0x108) is None  # same 64B block
        assert len(wb) == 1
        assert wb.stats.coalesced == 1

    def test_different_blocks_occupy_entries(self, wb):
        wb.push(0x000)
        wb.push(0x040)
        wb.push(0x080)
        assert len(wb) == 3
        assert wb.stats.coalesced == 0

    def test_contains_by_block(self, wb):
        wb.push(0x100)
        assert wb.contains(0x13F)
        assert not wb.contains(0x140)

    def test_coalescing_refreshes_fifo_position(self, wb):
        for i in range(4):
            wb.push(i * 64)
        wb.push(0x8)  # coalesce into the oldest block 0
        drained = wb.push(0x400)  # overflow
        assert drained == 0x40  # block 0 was refreshed; block 1 drains


class TestOverflow:
    def test_overflow_drains_oldest(self, wb):
        for i in range(4):
            assert wb.push(i * 64) is None
        drained = wb.push(4 * 64)
        assert drained == 0
        assert len(wb) == 4
        assert wb.stats.drains == 1

    def test_full_flag(self, wb):
        for i in range(4):
            wb.push(i * 64)
        assert wb.full


class TestDraining:
    def test_drain_one_fifo_order(self, wb):
        wb.push(0x80)
        wb.push(0x40)
        assert wb.drain_one() == 0x80
        assert wb.drain_one() == 0x40
        assert wb.drain_one() is None

    def test_drain_all(self, wb):
        blocks = [0x200, 0x100, 0x300]
        for b in blocks:
            wb.push(b)
        assert wb.drain_all() == blocks
        assert len(wb) == 0

    def test_drain_counts(self, wb):
        wb.push(0)
        wb.push(64)
        wb.drain_all()
        assert wb.stats.drains == 2


class TestStats:
    def test_stores_seen(self, wb):
        wb.push(0)
        wb.push(8)
        wb.push(64)
        assert wb.stats.stores_seen == 3
        assert wb.stats.inserts == 2
        assert wb.stats.coalesced == 1
