"""Tests for the optional three-level (L1/L2/L3) hierarchy."""

import pytest

from repro.cache import HierarchyConfig, MemoryHierarchy
from repro.cache.cache import CacheConfig, WritePolicy
from repro.cache.hierarchy import default_l3_config
from repro.core import ProtectedL2, ProtectionConfig, check_invariants


def three_level(l3_instance=None):
    cfg = HierarchyConfig(
        l1i=CacheConfig("l1i", 1024, 2, 32,
                        write_policy=WritePolicy.WRITE_THROUGH,
                        write_allocate=False),
        l1d=CacheConfig("l1d", 1024, 2, 32,
                        write_policy=WritePolicy.WRITE_THROUGH,
                        write_allocate=False),
        l2=CacheConfig("l2", 4096, 4, 64, hit_latency=10),
        l3=CacheConfig("l3", 16384, 8, 64, hit_latency=25),
        write_buffer_entries=4,
    )
    return MemoryHierarchy(config=cfg, l3=l3_instance)


class TestConstruction:
    def test_default_is_two_level(self):
        h = MemoryHierarchy()
        assert h.l3 is None
        assert h.levels == [h.l2]

    def test_config_enables_l3(self):
        h = three_level()
        assert h.l3 is not None
        assert h.levels == [h.l2, h.l3]

    def test_default_l3_config(self):
        cfg = default_l3_config()
        assert cfg.size_bytes == 4 * 1024 * 1024
        assert cfg.ways == 8

    def test_explicit_l3_instance_wins(self):
        from repro.cache.cache import SetAssociativeCache

        mine = SetAssociativeCache(CacheConfig("l3", 16384, 8, 64))
        h = three_level(l3_instance=mine)
        assert h.l3 is mine


class TestDataPath:
    def test_l3_hit_cheaper_than_memory(self):
        h = three_level()
        cold = h.load(0x10000, 1)
        # Evict from L2 (4KB, 16 sets) but not L3 with same-set traffic.
        for i in range(1, 6):
            h.load(0x10000 + i * 1024, 1 + i)
        assert not h.l2.probe(0x10000)
        assert h.l3.probe(0x10000)
        warm = h.load(0x10000, 10_000)  # well after every fill completed
        assert warm < cold
        assert warm == 1 + 10 + 25  # L1 miss + L2 miss + L3 hit

    def test_l2_writeback_lands_in_l3(self):
        h = three_level()
        h.store(0x0, 1)
        h.drain_write_buffer(2)
        assert h.l2.dirty.dirty_count == 1
        # Force the dirty line out of the L2 (same-set reads).
        for i in range(1, 6):
            h.load(i * 1024, 2 + i)
        assert not h.l2.find_line(0x0) or not h.l2.find_line(0x0).dirty
        line = h.l3.find_line(0x0)
        assert line is not None and line.dirty

    def test_l3_writeback_reaches_memory(self):
        h = three_level()
        h.store(0x0, 1)
        h.drain_write_buffer(2)
        before = h.memory.stats.writes
        # Storm one L3 set: stride = n_sets * line = 32 * 64 = 2KB for L2
        # (16 sets * 4 ways) and L3 has 32 sets -> 2KB stride aliases both.
        for i in range(1, 20):
            h.load(i * 2048, 2 + i)
        assert h.memory.stats.writes > before

    def test_ifetch_through_all_levels(self):
        h = three_level()
        h.ifetch(0x400000, 1)
        assert h.l2.probe(0x400000)
        assert h.l3.probe(0x400000)


class TestProtectedL3:
    """The paper's scheme applied at the third level."""

    def test_protected_l3_cleaning_runs(self):
        l3 = ProtectedL2(
            CacheConfig("l3", 16384, 8, 64, hit_latency=25),
            ProtectionConfig(cleaning_interval=64, ecc_entries_per_set=1),
        )
        h = three_level(l3_instance=l3)
        h.store(0x0, 1)
        h.drain_write_buffer(2)
        # Push the dirty line down into the L3.
        for i in range(1, 6):
            h.load(i * 1024, 2 + i)
        assert l3.dirty.dirty_count == 1
        # Idle traffic elsewhere lets the L3 sweep clean it.
        for i in range(300):
            h.load(0x200000 + (i % 2) * 64, 100 + i * 20)
        assert l3.dirty.dirty_count == 0
        check_invariants(l3)

    def test_protected_l3_ecc_eviction(self):
        l3 = ProtectedL2(
            CacheConfig("l3", 16384, 8, 64, hit_latency=25),
            ProtectionConfig(cleaning_interval=None, ecc_entries_per_set=1),
        )
        h = three_level(l3_instance=l3)
        # Two dirty lines in the same L3 set (stride 32 sets * 64B = 2KB).
        h.store(0x0, 1)
        h.store(0x800, 2)
        h.drain_write_buffer(3)
        # Evict both from L2 into L3 (they map to different L2 sets?
        # 0x800 = set 0 of L2 too (4KB/4w/64B: 16 sets, stride 1KB) -> no;
        # 0x800/64 = 32 -> set 0 of 16? 32 % 16 = 0: same L2 set).
        for i in range(1, 6):
            h.load(i * 1024 + 64, 3 + i)
        # At most one dirty line per L3 set survived.
        set0_dirty = sum(
            1 for line in l3.sets[0] if line.valid and line.dirty
        )
        assert set0_dirty <= 1
        check_invariants(l3)
