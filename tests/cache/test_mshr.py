"""Tests for MSHR in-flight miss tracking."""

import pytest

from repro.cache import MemoryHierarchy
from repro.cache.mshr import MshrFile


class TestMshrFile:
    def test_validation(self):
        with pytest.raises(ValueError):
            MshrFile(entries=0)

    def test_no_pending_initially(self):
        m = MshrFile()
        assert m.pending_ready(5, cycle=0) is None

    def test_pending_until_ready(self):
        m = MshrFile()
        m.allocate(block=5, ready=100, cycle=0)
        assert m.pending_ready(5, cycle=50) == 100
        assert m.pending_ready(5, cycle=100) is None

    def test_merge_counted(self):
        m = MshrFile()
        m.allocate(7, ready=100, cycle=0)
        m.pending_ready(7, cycle=10)
        m.pending_ready(7, cycle=20)
        assert m.stats.merges == 2

    def test_prune_on_allocate(self):
        m = MshrFile(entries=2)
        m.allocate(1, ready=10, cycle=0)
        m.allocate(2, ready=20, cycle=0)
        # Both done by cycle 30: no overflow for a third entry.
        m.allocate(3, ready=50, cycle=30)
        assert m.stats.overflows == 0
        assert len(m) == 1

    def test_overflow_displaces_soonest(self):
        m = MshrFile(entries=2)
        m.allocate(1, ready=100, cycle=0)
        m.allocate(2, ready=200, cycle=0)
        m.allocate(3, ready=300, cycle=0)
        assert m.stats.overflows == 1
        assert m.pending_ready(1, 0) is None  # displaced
        assert m.pending_ready(2, 0) == 200

    def test_reallocate_same_block_not_overflow(self):
        m = MshrFile(entries=1)
        m.allocate(1, ready=100, cycle=0)
        m.allocate(1, ready=120, cycle=10)
        assert m.stats.overflows == 0


class TestHierarchyMergedMisses:
    def test_second_load_waits_for_inflight_fill(self):
        """A load right behind a miss to the same block must not see a
        1-cycle hit — the data is still on its way from memory."""
        h = MemoryHierarchy()
        first = h.load(0x10000, cycle=10)
        assert first > 100  # cold miss to memory
        second = h.load(0x10008, cycle=11)  # same 64B block, next cycle
        assert second > 50  # waits for the fill, not an instant hit
        assert second <= first
        assert h.l1d_mshr.stats.merges == 1

    def test_load_after_fill_completes_hits(self):
        h = MemoryHierarchy()
        lat = h.load(0x10000, cycle=10)
        warm = h.load(0x10008, cycle=10 + lat + 1)
        assert warm == h.l1d.config.hit_latency

    def test_ifetch_merging(self):
        h = MemoryHierarchy()
        h.ifetch(0x400000, cycle=1)
        merged = h.ifetch(0x400020, cycle=2)  # same 64B block
        assert merged > 50
        assert h.l1i_mshr.stats.merges == 1

    def test_distinct_blocks_do_not_merge(self):
        h = MemoryHierarchy()
        h.load(0x10000, cycle=1)
        h.load(0x20000, cycle=2)
        assert h.l1d_mshr.stats.merges == 0
