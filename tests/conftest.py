"""Shared test configuration.

Hypothesis is pinned to a deterministic, CI-friendly profile: derandomised
(stable shrinking across runs) and without deadlines (simulation-heavy
properties have legitimately variable runtimes).
"""

from hypothesis import settings

settings.register_profile(
    "repro", deadline=None, derandomize=True, max_examples=60
)
settings.load_profile("repro")
