"""Extension: the scheme at the third cache level.

The paper's title and motivation cover L2 *and* L3 caches (POWER4 and
Itanium protect both with ECC).  This bench runs a three-level scaled
hierarchy with the protected cache at L3: the structural dirty cap
becomes 1/8 (one ECC entry per 8-way set) and the area arithmetic
yields the same 59% reduction on a 4MB L3.
"""

from dataclasses import replace

import pytest
from _shared import BENCH_CONFIG, write_result

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.core import (
    ProtectedL2,
    ProtectionConfig,
    conventional_overhead,
    proposed_overhead,
    reduction,
)
from repro.experiments import render_table
from repro.experiments.runner import run_ref_stream
from repro.workloads import get_benchmark, make_ref_stream

#: Benchmarks whose footprints spill past the L2 and exercise the L3:
#: swim streams through 2x the L3, bzip2's footprint is L3-resident,
#: mcf pointer-chases across 2x the L3.
SUBSET = ["swim", "bzip2", "mcf"]


def _three_level_config():
    base = BENCH_CONFIG.geometry.hierarchy_config()
    l3 = CacheConfig(
        "l3",
        size_bytes=4 * base.l2.size_bytes,
        ways=8,
        line_bytes=64,
        hit_latency=25,
    )
    return replace(base, l3=l3)


def _run_all():
    rows = []
    hier_cfg = _three_level_config()
    for name in SUBSET:
        l3 = ProtectedL2(
            hier_cfg.l3,
            ProtectionConfig(
                cleaning_interval=BENCH_CONFIG.geometry.scaled_interval(
                    1 << 20
                ),
                ecc_entries_per_set=1,
            ),
        )
        hierarchy = MemoryHierarchy(config=hier_cfg, l3=l3)
        stream = make_ref_stream(
            get_benchmark(name), BENCH_CONFIG.geometry.l2_bytes,
            seed=BENCH_CONFIG.seed,
        )
        run_ref_stream(stream, hierarchy, BENCH_CONFIG, label=name)
        rows.append(
            [
                name,
                100 * l3.dirty.average_dirty_fraction(hierarchy.clock),
                100 * l3.dirty.peak_dirty / l3.config.n_lines,
                l3.stats.writebacks_cleaning,
                l3.stats.writebacks_ecc_eviction,
            ]
        )
    return rows


def bench_l3_protection(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    # Area story on a full-size 4MB / 8-way / 64B L3.
    l3_full = CacheConfig("l3", 4 * 1024 * 1024, 8, 64)
    conv = conventional_overhead(l3_full)
    ours = proposed_overhead(l3_full)
    red = reduction(conv, ours)

    table = render_table(
        ["benchmark", "L3 dirty %", "peak dirty %", "Clean-WB", "ECC-WB"],
        rows,
        title=(
            "Protected L3 (scaled 3-level hierarchy); full-size 4MB L3 "
            f"area: {conv.total_kib:.0f} -> {ours.total_kib:.0f} KiB "
            f"({100 * red:.1f}% reduction)"
        ),
    )
    write_result("l3_protection", table)

    # One ECC entry per 8-way set bounds dirty residency at 12.5%.
    for name, dirty, peak, _, _ in rows:
        assert peak <= 12.5 + 1e-6, (name, peak)
        assert dirty <= peak
    # The benchmarks that reach the L3 leave dirty lines it must manage.
    assert any(dirty > 0 for _, dirty, _, _, _ in rows)
    # For an 8-way cache the per-set shared array is relatively smaller
    # than the paper's 4-way case, so the saving *grows* past 59%.
    assert red == pytest.approx(0.712, abs=0.002)
    assert conv.total_kib == 528.0
    assert ours.total_kib == 152.0
