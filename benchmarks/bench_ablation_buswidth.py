"""Ablation: IPC loss vs off-chip bus bandwidth.

The paper attributes its <1% IPC loss to the extra write-backs only
contending for the split-transaction bus.  If that is the mechanism,
the loss must fall monotonically as the bus widens — and it does.
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import ablate_bus_width, render_series

SUBSET = ["swim", "mcf"]  # the memory-bound benchmarks feel the bus most


def bench_ablation_buswidth(benchmark):
    res = benchmark.pedantic(
        ablate_bus_width,
        kwargs=dict(config=BENCH_CONFIG, benchmarks=SUBSET,
                    widths=(4, 8, 16), n_insts=120_000),
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_buswidth",
        render_series(
            res,
            title="Ablation: IPC loss of the scheme vs bus width "
                  "(Table 1 bus is 8B)",
        ),
    )

    for name, row in res.items():
        losses = [row["4B loss %"], row["8B loss %"], row["16B loss %"]]
        # Wider bus -> less contention -> smaller loss (within noise).
        assert losses[2] <= losses[0] + 0.5, (name, losses)
        # At Table 1's 8B width the loss stays under the paper's 1%-ish.
        assert abs(row["8B loss %"]) < 3.0, name
