"""Extension: multi-bit upsets (adjacent-bit bursts) per code.

Technology scaling makes single strikes flip *clusters* of adjacent
cells.  The paper's cited designs interleave their parity physically;
this bench quantifies why: detection rates per code under bursts of
1–8 adjacent bits.
"""

from _shared import write_result

from repro.ecc import (
    CheckOutcome,
    FaultInjector,
    InterleavedParityCodec,
    ParityCodec,
    SecDedCodec,
)
from repro.experiments import render_table

TRIALS = 400
BURSTS = (1, 2, 3, 4, 8)


def _run():
    codecs = {
        "parity (1-bit)": ParityCodec(),
        "interleaved parity (8-way)": InterleavedParityCodec(8),
        "SECDED(72,64)": SecDedCodec(),
    }
    rows = []
    for name, codec in codecs.items():
        inj = FaultInjector(codec, seed=13)
        caught = []
        for burst in BURSTS:
            stats = inj.campaign(TRIALS, burst, burst=True)
            handled = stats.rate(CheckOutcome.DETECTED) + stats.rate(
                CheckOutcome.CORRECTED
            )
            caught.append(100.0 * handled)
        rows.append([name] + caught)
    return rows


def bench_burst_errors(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = render_table(
        ["code"] + [f"burst {b}" for b in BURSTS],
        rows,
        ndigits=1,
        title="Detected-or-corrected rate (%) under adjacent-bit bursts",
    )
    write_result("burst_errors", table)

    by_name = {row[0]: row[1:] for row in rows}
    # Plain parity catches only odd bursts.
    parity = by_name["parity (1-bit)"]
    assert parity[0] == 100.0  # burst 1
    assert parity[1] == 0.0  # burst 2
    # Interleaved parity catches everything up to its interleave degree.
    assert all(v == 100.0 for v in by_name["interleaved parity (8-way)"])
    # SECDED handles 1-2 bursts fully; beyond that it degrades.
    secded = by_name["SECDED(72,64)"]
    assert secded[0] == 100.0 and secded[1] == 100.0
    assert secded[4] < 100.0  # burst 8 exceeds its design point
