"""Section 5.2 area accounting: 54 KB vs 132 KB -> 59% reduction.

This is the paper's headline number and is reproduced exactly (it is
closed-form over the 1MB/4-way/64B geometry, independent of workloads).
"""

import pytest
from _shared import write_result

from repro.cache.hierarchy import default_l2_config
from repro.core import li_et_al_overhead
from repro.experiments import area_table, render_table


def bench_area_model(benchmark):
    conv, ours, red = benchmark.pedantic(area_table, rounds=1, iterations=1)
    li = li_et_al_overhead(default_l2_config())

    rows = [
        [f"conventional: {name}", bits, kib]
        for name, bits, kib in conv.rows()
    ] + [
        [f"proposed: {name}", bits, kib] for name, bits, kib in ours.rows()
    ] + [
        ["Li et al. [11]: total (no area reduction)", li.total_bits,
         li.total_kib],
        ["reduction", "", f"{100 * red:.1f}%"],
    ]
    table = render_table(
        ["component", "bits", "KiB"],
        rows,
        title="Area overhead for error protection (1MB 4-way 64B L2)",
    )
    write_result("area_model", table)

    assert conv.total_kib == 132.0
    assert ours.total_kib == 54.0
    assert red == pytest.approx(0.59, abs=0.005)
    # The paper's related-work claim: Li et al. save nothing.
    assert li.total_kib > conv.total_kib
