"""Figure 1: % dirty lines per cycle in the conventional 1MB-class L2.

Paper: 51.6% average across SPEC2000; apsi, mesa, gap and parser stand
out with large dirty populations ("a large percentage of clean cache
lines except for four benchmarks").
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import figure1, render_series


def bench_fig1_dirty_baseline(benchmark):
    f1 = benchmark.pedantic(
        figure1, args=(BENCH_CONFIG,), rounds=1, iterations=1
    )
    table = render_series(
        {k: {"dirty %": v} for k, v in f1.items()},
        title="Figure 1: % dirty L2 lines per cycle (conventional cache)",
    )
    write_result("fig1_dirty_baseline", table)

    average = sum(f1.values()) / len(f1)
    # Paper reports 51.6% on average.
    assert 35.0 <= average <= 65.0, f"average dirty {average:.1f}%"
    # The four named outliers must sit clearly above the suite average.
    for outlier in ("apsi", "mesa", "gap", "parser"):
        assert f1[outlier] > average, (outlier, f1[outlier], average)
