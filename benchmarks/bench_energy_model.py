"""Extension: memory-system energy, conventional vs the paper's scheme.

The paper motivates the cleaning-interval choice by the energy cost of
extra memory traffic, and its cited prior work (Li et al. [11]) adopts
non-uniform protection for energy.  This bench quantifies the balance:
coding-logic energy falls sharply (most reads check only parity), bus
and DRAM energy rises slightly with the extra write-backs.
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import ablate_energy, render_series

SUBSET = ["swim", "mesa", "apsi", "mcf", "gap", "parser"]


def bench_energy_model(benchmark):
    res = benchmark.pedantic(
        ablate_energy,
        kwargs=dict(config=BENCH_CONFIG, benchmarks=SUBSET),
        rounds=1,
        iterations=1,
    )
    write_result(
        "energy_model",
        render_series(
            res,
            title="Energy: conventional vs proposed scheme (per benchmark)",
        ),
    )

    # Coding-logic energy roughly halves across the suite (most checks
    # become 1-bit parity instead of 8-bit SECDED).
    coding_conv = sum(r["conv coding uJ"] for r in res.values())
    coding_ours = sum(r["ours coding uJ"] for r in res.values())
    assert coding_ours < 0.75 * coding_conv, (coding_ours, coding_conv)

    # Aggregate system energy rises only modestly: the extra write-backs
    # matter on the benchmarks with near-zero baseline traffic (mesa,
    # apsi, gap, parser — hence their large *percentages*), but their
    # absolute energy is small next to the memory-active benchmarks.
    total_conv = sum(r["conv uJ"] for r in res.values())
    total_ours = sum(r["ours uJ"] for r in res.values())
    assert total_ours < 1.25 * total_conv, (total_ours, total_conv)

    # Per benchmark, coding work never exceeds conventional by much —
    # the write-heavy resident benchmarks (mesa, apsi, gap) re-encode
    # on their extra write-backs, which offsets part of the parity win.
    for name, row in res.items():
        assert row["ours coding uJ"] <= 1.35 * row["conv coding uJ"], name
