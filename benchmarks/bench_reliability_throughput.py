"""Injection-kernel throughput: the CI performance-regression gate.

Measures trials/second of the reliability campaign's shard kernels
(``reference`` builds real codec objects per trial, ``batch`` classifies
against pooled pre-encoded lines, ``vector`` — when numpy is installed —
classifies whole blocks with table gathers; see ``repro.reliability``)
and an end-to-end campaign wall time, then writes the numbers to a JSON
artifact (schema v5: per-backend entries under ``kernels``, per-scenario
batch rates under ``scenarios`` — the correlated-fault presets run the
generic classification path, which has its own throughput profile worth
gating — an ``autotune`` section timing the Pareto explorer's cold
pass against a warm re-run over the same result cache, whose speedup
ratio gates the content-addressed point cache, and a ``runner`` section
timing the reference-stream runner with the standard variant against
the silent-write variant: the detection's refs/s overhead must stay
under the gate's 5% ceiling, proving the traffic-aware path is cheap
and — since the standard path never executes the detection at all —
that the nominal path's absolute rate holds its floor).  CI runs
this via ``make bench-perf`` and ``scripts/check_bench.py`` fails the
build when any backend's throughput drops below the committed baseline
(``BENCH_reliability.json`` at the repo root) or a speedup ratio falls
under its floor.  The ``vector`` entry is simply omitted when numpy is
absent; the gate skips it gracefully.

Standalone:

    PYTHONPATH=src python benchmarks/bench_reliability_throughput.py \
        --out benchmarks/results/BENCH_reliability.json

Under ``make bench`` (pytest-benchmark) only a reduced smoke version
runs, so the figure benches stay fast.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict

from _shared import RESULTS_DIR, write_result

from repro.experiments import render_table
from repro.reliability.campaign import (
    CampaignConfig,
    ShardSpec,
    run_campaign,
    run_shard,
    shard_seed,
)
from repro.reliability.model import FaultModelConfig, SCHEMES
from repro.reliability.scenarios import available_scenarios
from repro.reliability.vector import HAVE_NUMPY

#: Schema version of the emitted JSON (bump on shape changes).
SCHEMA = 5


def _measure(
    scheme: str,
    kernel: str,
    trials: int,
    seed: int,
    scenario: str = "nominal",
) -> float:
    """Wall seconds for one shard of ``trials`` under ``kernel``."""
    spec = ShardSpec(
        scheme=scheme,
        index=0,
        trials=trials,
        seed=shard_seed(seed, scheme, 0),
        model=FaultModelConfig(scenario=scenario),
        kernel=kernel,
    )
    start = time.perf_counter()
    run_shard(spec)
    return time.perf_counter() - start


def measure_autotune(point_trials: int = 400, seed: int = 0) -> Dict:
    """Explorer throughput: a cold grid pass vs a warm-cache re-run.

    The same tiny grid (3 schemes x 1 codec x 1 interval) is explored
    twice against one result-cache directory; the second pass must be
    served entirely from the content-addressed point cache, and its
    cells/s over the cold pass's is the ``warm_speedup`` the regression
    gate floors (a cache bug degrades it to ~1x long before any
    absolute rate drifts).
    """
    import tempfile

    from repro import api
    from repro.experiments.pool import ResultCache, SweepEngine

    request = api.AutotuneRequest(
        benchmarks=("mesa",),
        schemes=("non-uniform", "uniform-ecc", "parity-only"),
        codecs=("secded",),
        intervals=(262144,),
        objectives=("area", "fit"),
        trials=point_trials,
        trials_per_shard=max(1, point_trials // 2),
        refs=6000,
        warmup=2000,
        seed=seed,
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-autotune-") as tmp:
        walls = []
        for _ in range(2):
            engine = SweepEngine(jobs=1, cache=ResultCache(tmp))
            start = time.perf_counter()
            response = api.autotune(request, engine=engine)
            walls.append(time.perf_counter() - start)
        assert response.cached == len(response.points), (
            "warm pass was not served from the point cache"
        )
    cold_s, warm_s = walls
    points = len(response.points)
    return {
        "points": points,
        "seconds_cold": cold_s,
        "seconds_warm": warm_s,
        "cells_per_s_cold": points / cold_s,
        "cells_per_s_warm": points / warm_s,
        "warm_speedup": cold_s / warm_s,
    }


def measure_runner(
    refs: int = 40_000, seed: int = 0, repeats: int = 5
) -> Dict:
    """Reference-stream runner throughput: standard vs silent-write.

    The standard variant never executes the silent-write detection
    (it is a subclass hook), so the nominal path's absolute refs/s is
    gated against the baseline like any kernel; the variant run pays
    one RNG draw plus a dict probe per store, and the in-run
    ``overhead_pct`` proves that costs under the gate's 5% ceiling.

    Estimator: the two variants run back-to-back inside each of
    ``repeats`` rounds, and the overhead is the **median of the
    per-round wall-time ratios**.  On a shared runner a single ~0.5 s
    pass can be stalled 10x by scheduler noise; pairing the variants
    within a round makes load drift hit both sides of the ratio
    equally, and the median discards whole stalled rounds.  The
    absolute rates reported are each variant's best (minimum-wall)
    round, the classic load-independent cost estimator.
    """
    import statistics

    from repro.core.protected_cache import ProtectionConfig
    from repro.experiments.runner import RunConfig, run_refs

    protection = ProtectionConfig(
        cleaning_interval=1 << 20, ecc_entries_per_set=1
    )
    config = RunConfig(n_refs=refs, warmup_refs=refs // 4, seed=seed)
    warm = RunConfig(n_refs=2_000, warmup_refs=500, seed=seed)
    variants = ("standard", "silent-write")
    for variant in variants:
        run_refs("swim", protection, warm, variant=variant)
    best = {variant: float("inf") for variant in variants}
    ratios = []
    for _ in range(repeats):
        walls = {}
        for variant in variants:
            start = time.perf_counter()
            run_refs("swim", protection, config, variant=variant)
            walls[variant] = time.perf_counter() - start
            best[variant] = min(best[variant], walls[variant])
        ratios.append(walls["silent-write"] / walls["standard"])
    return {
        "refs": refs,
        "standard_refs_per_s": refs / best["standard"],
        "silent_write_refs_per_s": refs / best["silent-write"],
        "overhead_pct": 100.0 * (statistics.median(ratios) - 1.0),
    }


def measure_throughput(
    reference_trials: int = 20_000,
    batch_trials: int = 200_000,
    vector_trials: int = 2_000_000,
    campaign_trials: int = 100_000,
    scenario_trials: int = 50_000,
    autotune_trials: int = 400,
    runner_refs: int = 40_000,
    seed: int = 0,
) -> Dict:
    """The full measurement: per-scheme kernels + an end-to-end campaign."""
    schemes = sorted(SCHEMES)
    kernels = ["reference", "batch"] + (["vector"] if HAVE_NUMPY else [])
    trials_for = {
        "reference": reference_trials,
        "batch": batch_trials,
        "vector": vector_trials,
    }
    # Warm up every kernel once: the shared pool, the plan caches and
    # the syndrome tables are one-time costs that must not skew rates.
    for scheme in schemes:
        for kernel in kernels:
            _measure(scheme, kernel, 200, seed)

    per_scheme: Dict[str, Dict[str, float]] = {}
    seconds = {kernel: 0.0 for kernel in kernels}
    for scheme in schemes:
        row: Dict[str, float] = {}
        for kernel in kernels:
            wall = _measure(scheme, kernel, trials_for[kernel], seed)
            seconds[kernel] += wall
            row[f"{kernel}_trials_per_s"] = trials_for[kernel] / wall
        row["speedup"] = (
            row["batch_trials_per_s"] / row["reference_trials_per_s"]
        )
        per_scheme[scheme] = row

    rates = {
        kernel: len(schemes) * trials_for[kernel] / seconds[kernel]
        for kernel in kernels
    }
    kernel_doc: Dict[str, Dict[str, float]] = {
        "reference": {"trials_per_s": rates["reference"]},
        "batch": {
            "trials_per_s": rates["batch"],
            "speedup_vs_reference": rates["batch"] / rates["reference"],
        },
    }
    if "vector" in rates:
        kernel_doc["vector"] = {
            "trials_per_s": rates["vector"],
            "speedup_vs_batch": rates["vector"] / rates["batch"],
            "speedup_vs_reference": rates["vector"] / rates["reference"],
        }

    # Per-scenario batch throughput (uniform-ecc): nominal takes the
    # fast table path, correlated presets the generic mask classifier.
    scenario_doc: Dict[str, Dict[str, float]] = {}
    for scenario in available_scenarios():
        _measure("uniform-ecc", "batch", 200, seed, scenario=scenario)
        wall = _measure(
            "uniform-ecc", "batch", scenario_trials, seed,
            scenario=scenario,
        )
        scenario_doc[scenario] = {
            "batch_trials_per_s": scenario_trials / wall,
        }

    campaign_config = CampaignConfig(
        schemes=("uniform-ecc", "non-uniform"),
        trials=campaign_trials,
        trials_per_shard=5_000,
        seed=seed,
        kernel="batch",
    )
    start = time.perf_counter()
    result = run_campaign(campaign_config)
    campaign_s = time.perf_counter() - start

    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "schemes": per_scheme,
        "kernels": kernel_doc,
        "scenarios": scenario_doc,
        "autotune": measure_autotune(autotune_trials, seed),
        "runner": measure_runner(runner_refs, seed),
        "campaign": {
            "trials": result.total_trials,
            "seconds": campaign_s,
            "trials_per_s": result.total_trials / campaign_s,
        },
    }


def _render(payload: Dict) -> str:
    kernels = payload["kernels"]
    have_vector = "vector" in kernels
    headers = ["scheme", "reference trials/s", "batch trials/s"]
    if have_vector:
        headers.append("vector trials/s")
    headers.append("batch/ref speedup")
    rows = []
    for scheme, row in payload["schemes"].items():
        cells = [scheme, row["reference_trials_per_s"],
                 row["batch_trials_per_s"]]
        if have_vector:
            cells.append(row.get("vector_trials_per_s", 0.0))
        cells.append(row["speedup"])
        rows.append(cells)
    total = ["ALL", kernels["reference"]["trials_per_s"],
             kernels["batch"]["trials_per_s"]]
    if have_vector:
        total.append(kernels["vector"]["trials_per_s"])
    total.append(kernels["batch"]["speedup_vs_reference"])
    rows.append(total)
    table = render_table(
        headers,
        rows,
        ndigits=1,
        title="Injection kernel throughput (see scripts/check_bench.py)",
    )
    scenario_rows = [
        [name, entry["batch_trials_per_s"]]
        for name, entry in payload.get("scenarios", {}).items()
    ]
    if scenario_rows:
        table += "\n" + render_table(
            ["scenario", "batch trials/s"],
            scenario_rows,
            ndigits=1,
            title="Scenario-pack throughput (batch kernel, uniform-ecc)",
        )
    autotune = payload.get("autotune")
    if autotune:
        table += "\n" + render_table(
            ["pass", "cells/s"],
            [
                ["cold", autotune["cells_per_s_cold"]],
                ["warm (cached)", autotune["cells_per_s_warm"]],
                ["warm speedup", autotune["warm_speedup"]],
            ],
            ndigits=1,
            title=(f"Autotune explorer throughput "
                   f"({autotune['points']}-point grid)"),
        )
    runner = payload.get("runner")
    if runner:
        table += "\n" + render_table(
            ["variant", "refs/s"],
            [
                ["standard", runner["standard_refs_per_s"]],
                ["silent-write", runner["silent_write_refs_per_s"]],
                ["detection overhead %", runner["overhead_pct"]],
            ],
            ndigits=1,
            title=(f"Runner throughput "
                   f"({runner['refs']} refs, swim)"),
        )
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(RESULTS_DIR / "BENCH_reliability.json"),
        help="where to write the JSON artifact",
    )
    parser.add_argument("--reference-trials", type=int, default=20_000)
    parser.add_argument("--batch-trials", type=int, default=200_000)
    parser.add_argument("--vector-trials", type=int, default=2_000_000)
    parser.add_argument("--campaign-trials", type=int, default=100_000)
    parser.add_argument("--scenario-trials", type=int, default=50_000)
    parser.add_argument("--autotune-trials", type=int, default=400)
    parser.add_argument("--runner-refs", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    payload = measure_throughput(
        reference_trials=args.reference_trials,
        batch_trials=args.batch_trials,
        vector_trials=args.vector_trials,
        campaign_trials=args.campaign_trials,
        scenario_trials=args.scenario_trials,
        autotune_trials=args.autotune_trials,
        runner_refs=args.runner_refs,
        seed=args.seed,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    table = _render(payload)
    write_result("reliability_throughput", table)
    print(table)
    if "vector" not in payload["kernels"]:
        print("vector kernel: skipped (numpy not installed)")
    print(
        f"campaign: {payload['campaign']['trials']} trials in "
        f"{payload['campaign']['seconds']:.2f}s "
        f"({payload['campaign']['trials_per_s']:.0f} trials/s)"
    )
    print(f"wrote {args.out}")
    return 0


def bench_reliability_throughput(benchmark):
    """Reduced smoke version for ``make bench``: batch beats reference."""
    payload = benchmark.pedantic(
        lambda: measure_throughput(
            reference_trials=4_000,
            batch_trials=40_000,
            vector_trials=200_000,
            campaign_trials=20_000,
            scenario_trials=10_000,
            autotune_trials=200,
            runner_refs=10_000,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("reliability_throughput", _render(payload))
    # Loose in-bench floors; the committed-baseline gate is the real one.
    assert payload["kernels"]["batch"]["speedup_vs_reference"] > 4
    if "vector" in payload["kernels"]:
        assert payload["kernels"]["vector"]["speedup_vs_batch"] > 2
    assert payload["autotune"]["warm_speedup"] > 2
    assert payload["runner"]["standard_refs_per_s"] > 0
    assert payload["runner"]["overhead_pct"] < 50  # tight gate is in CI


if __name__ == "__main__":
    sys.exit(main())
