"""Injection-kernel throughput: the CI performance-regression gate.

Measures trials/second of the reliability campaign's two shard kernels
(``reference`` builds real codec objects per trial, ``batch`` classifies
against pooled pre-encoded lines — see ``repro.reliability.kernel``) and
an end-to-end campaign wall time, then writes the numbers to a JSON
artifact.  CI runs this via ``make bench-perf`` and
``scripts/check_bench.py`` fails the build when batch throughput drops
below the committed baseline (``BENCH_reliability.json`` at the repo
root) or the batch/reference speedup falls under its floor.

Standalone:

    PYTHONPATH=src python benchmarks/bench_reliability_throughput.py \
        --out benchmarks/results/BENCH_reliability.json

Under ``make bench`` (pytest-benchmark) only a reduced smoke version
runs, so the figure benches stay fast.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict

from _shared import RESULTS_DIR, write_result

from repro.experiments import render_table
from repro.reliability.campaign import (
    CampaignConfig,
    ShardSpec,
    run_campaign,
    run_shard,
    shard_seed,
)
from repro.reliability.model import FaultModelConfig, SCHEMES

#: Schema version of the emitted JSON (bump on shape changes).
SCHEMA = 1


def _measure(scheme: str, kernel: str, trials: int, seed: int) -> float:
    """Wall seconds for one shard of ``trials`` under ``kernel``."""
    spec = ShardSpec(
        scheme=scheme,
        index=0,
        trials=trials,
        seed=shard_seed(seed, scheme, 0),
        model=FaultModelConfig(),
        kernel=kernel,
    )
    start = time.perf_counter()
    run_shard(spec)
    return time.perf_counter() - start


def measure_throughput(
    reference_trials: int = 20_000,
    batch_trials: int = 200_000,
    campaign_trials: int = 100_000,
    seed: int = 0,
) -> Dict:
    """The full measurement: per-scheme kernels + an end-to-end campaign."""
    schemes = sorted(SCHEMES)
    # Warm up both kernels once: the shared pool, the plan cache and the
    # syndrome tables are one-time costs that should not skew the rates.
    for scheme in schemes:
        _measure(scheme, "reference", 200, seed)
        _measure(scheme, "batch", 200, seed)

    per_scheme: Dict[str, Dict[str, float]] = {}
    ref_seconds = batch_seconds = 0.0
    for scheme in schemes:
        ref_s = _measure(scheme, "reference", reference_trials, seed)
        batch_s = _measure(scheme, "batch", batch_trials, seed)
        ref_seconds += ref_s
        batch_seconds += batch_s
        per_scheme[scheme] = {
            "reference_trials_per_s": reference_trials / ref_s,
            "batch_trials_per_s": batch_trials / batch_s,
            "speedup": (batch_trials / batch_s) / (reference_trials / ref_s),
        }

    reference_rate = len(schemes) * reference_trials / ref_seconds
    batch_rate = len(schemes) * batch_trials / batch_seconds

    campaign_config = CampaignConfig(
        schemes=("uniform-ecc", "non-uniform"),
        trials=campaign_trials,
        trials_per_shard=5_000,
        seed=seed,
        kernel="batch",
    )
    start = time.perf_counter()
    result = run_campaign(campaign_config)
    campaign_s = time.perf_counter() - start

    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "schemes": per_scheme,
        "reference_trials_per_s": reference_rate,
        "batch_trials_per_s": batch_rate,
        "speedup": batch_rate / reference_rate,
        "campaign": {
            "trials": result.total_trials,
            "seconds": campaign_s,
            "trials_per_s": result.total_trials / campaign_s,
        },
    }


def _render(payload: Dict) -> str:
    rows = [
        [
            scheme,
            row["reference_trials_per_s"],
            row["batch_trials_per_s"],
            row["speedup"],
        ]
        for scheme, row in payload["schemes"].items()
    ]
    rows.append(
        [
            "ALL",
            payload["reference_trials_per_s"],
            payload["batch_trials_per_s"],
            payload["speedup"],
        ]
    )
    return render_table(
        ["scheme", "reference trials/s", "batch trials/s", "speedup"],
        rows,
        ndigits=1,
        title="Injection kernel throughput (see scripts/check_bench.py)",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(RESULTS_DIR / "BENCH_reliability.json"),
        help="where to write the JSON artifact",
    )
    parser.add_argument("--reference-trials", type=int, default=20_000)
    parser.add_argument("--batch-trials", type=int, default=200_000)
    parser.add_argument("--campaign-trials", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    payload = measure_throughput(
        reference_trials=args.reference_trials,
        batch_trials=args.batch_trials,
        campaign_trials=args.campaign_trials,
        seed=args.seed,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    table = _render(payload)
    write_result("reliability_throughput", table)
    print(table)
    print(
        f"campaign: {payload['campaign']['trials']} trials in "
        f"{payload['campaign']['seconds']:.2f}s "
        f"({payload['campaign']['trials_per_s']:.0f} trials/s)"
    )
    print(f"wrote {args.out}")
    return 0


def bench_reliability_throughput(benchmark):
    """Reduced smoke version for ``make bench``: batch beats reference."""
    payload = benchmark.pedantic(
        lambda: measure_throughput(
            reference_trials=4_000,
            batch_trials=40_000,
            campaign_trials=20_000,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("reliability_throughput", _render(payload))
    # Loose in-bench floor; the committed-baseline gate is the real one.
    assert payload["speedup"] > 4


if __name__ == "__main__":
    sys.exit(main())
