"""Figure 8: write-back traffic of the full scheme, split by cause.

Paper shape: Clean-WB and normal WB are small; ECC-WB dominates the
added traffic on average ("ECC-WB consists of most of the write back
traffic on the average"), and the total increase over the original
configuration is small (1.20%/1.19% vs 1.08%/1.12% in the paper).
"""

from _shared import BENCH_CONFIG, get_sweep, series_average, write_result

from repro.experiments import figure5_6, figure8, render_series


def bench_fig8_traffic_ours(benchmark):
    f8 = benchmark.pedantic(
        figure8, args=(BENCH_CONFIG,), rounds=1, iterations=1
    )
    write_result(
        "fig8_traffic_ours",
        render_series(
            f8,
            title="Figure 8: write-back % split WB / Clean-WB / ECC-WB (ours)",
        ),
    )

    avg = {
        col: series_average(f8, col)
        for col in ("WB", "Clean-WB", "ECC-WB", "total")
    }
    # ECC-WB dominates the scheme's write-back traffic on average.
    assert avg["ECC-WB"] >= avg["Clean-WB"], avg
    assert avg["ECC-WB"] >= avg["WB"], avg

    # Total traffic stays within a modest factor of the org baselines.
    org = (
        series_average(figure5_6("fp", BENCH_CONFIG, sweep=get_sweep("fp")), "org")
        + series_average(
            figure5_6("int", BENCH_CONFIG, sweep=get_sweep("int")), "org"
        )
    ) / 2
    assert avg["total"] <= org + 3.0, (avg["total"], org)
