"""Figure 6: write-back traffic vs cleaning interval, INT benchmarks.

Paper shape: as Figure 5 (1.16% at 1M vs 1.12% org in the paper's
setup) — the 1M interval adds almost no memory traffic.
"""

from _shared import BENCH_CONFIG, get_sweep, series_average, write_result

from repro.experiments import figure5_6, render_series


def bench_fig6_int_traffic(benchmark):
    sweep = benchmark.pedantic(get_sweep, args=("int",), rounds=1, iterations=1)
    f6 = figure5_6("int", BENCH_CONFIG, sweep=sweep)
    write_result(
        "fig6_int_traffic",
        render_series(
            f6, title="Figure 6: write-backs as % of loads/stores (INT)"
        ),
    )

    org = series_average(f6, "org")
    one_m = series_average(f6, "1M")
    small = series_average(f6, "64K")
    assert one_m <= org * 1.35 + 0.3, (one_m, org)
    assert small >= one_m - 0.2, (small, one_m)
    # Per benchmark, cleaning never reduces traffic below org (within noise).
    for name, row in f6.items():
        assert row["64K"] >= row["org"] - 0.5, name
