"""Section 5.2 performance: IPC loss of the full scheme vs the baseline.

Paper: 0.14% average loss for FP and 0.65% for INT — i.e. under 1% —
because the added write-backs only contend for the (split-transaction)
memory bus.  The reproduced criterion: average loss below 1% per suite
and no benchmark suffering a dramatic slowdown.
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import ipc_loss, render_series

N_INSTS = 150_000


def _run():
    return {
        "fp": ipc_loss(BENCH_CONFIG, suite="fp", n_insts=N_INSTS),
        "int": ipc_loss(BENCH_CONFIG, suite="int", n_insts=N_INSTS),
    }


def bench_ipc_loss(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    combined = {**results["fp"], **results["int"]}
    write_result(
        "ipc_loss",
        render_series(
            combined,
            ndigits=3,
            title="IPC: conventional (org) vs full scheme (ours)",
        ),
    )

    for suite, rows in results.items():
        losses = [row["loss %"] for row in rows.values()]
        avg = sum(losses) / len(losses)
        assert avg < 1.0, (suite, avg)
        assert max(losses) < 5.0, (suite, max(losses))
