"""Ablation: per-benchmark best cleaning interval.

The paper: "each benchmark will have different cleaning interval for
best results" (it uses a global statically-profiled 1M).  This study
picks each benchmark's most aggressive interval whose write-back
traffic stays within a 1-percentage-point budget of the uncleaned
baseline.
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import ablate_best_interval, render_table

SUBSET = ["swim", "equake", "mesa", "apsi", "mcf", "gap", "parser", "twolf"]


def bench_ablation_interval(benchmark):
    res = benchmark.pedantic(
        ablate_best_interval,
        kwargs=dict(config=BENCH_CONFIG, traffic_budget_pct=1.0,
                    benchmarks=SUBSET),
        rounds=1,
        iterations=1,
    )
    table = render_table(
        ["benchmark", "best interval", "dirty %", "wb %", "org dirty %"],
        [
            [name, row["interval"], row["dirty %"], row["wb %"],
             row["org dirty %"]]
            for name, row in res.items()
        ],
        title="Ablation: per-benchmark best cleaning interval "
              "(<=1pp traffic budget)",
    )
    write_result("ablation_interval", table)

    for name, row in res.items():
        assert row["dirty %"] <= row["org dirty %"] + 1e-9, name
    # At least one benchmark profits from a non-default interval choice.
    assert any(row["interval"] not in ("1M", "org") for row in res.values())
