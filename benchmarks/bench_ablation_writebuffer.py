"""Ablation: write-buffer depth (Skadron & Clark [6]).

The paper's baseline interposes a 16-entry coalescing write buffer
between the write-through L1D and the L2.  Depth controls how many
store blocks can merge before draining; the coalescing rate it achieves
determines how much raw store traffic ever reaches the L2 — the stream
the protection scheme's dirty lines are born from.
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import ablate_write_buffer, render_series

SUBSET = ["swim", "mesa", "gap", "parser", "mcf"]


def bench_ablation_writebuffer(benchmark):
    res = benchmark.pedantic(
        ablate_write_buffer,
        kwargs=dict(config=BENCH_CONFIG, benchmarks=SUBSET),
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_writebuffer",
        render_series(
            res, title="Ablation: store coalescing rate vs buffer depth (%)"
        ),
    )

    for name, row in res.items():
        rates = [row[f"coalesce@{d}"] for d in (1, 4, 16, 64)]
        # Deeper buffers never coalesce less.
        assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:])), name
        assert 0.0 <= rates[-1] <= 100.0


def bench_ablation_cachesize(benchmark):
    from repro.experiments import ablate_cache_size

    res = benchmark.pedantic(
        ablate_cache_size,
        kwargs=dict(config=BENCH_CONFIG, benchmarks=["mesa", "swim", "mcf"]),
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_cachesize",
        render_series(
            res, title="Ablation: baseline dirty % vs L2 capacity"
        ),
    )

    # A cache-resident benchmark's dirty *count* is its footprint, so
    # the *fraction* halves as capacity doubles.
    mesa = res["mesa"]
    assert mesa["2x"] < mesa["1x"] < mesa["0.5x"]
