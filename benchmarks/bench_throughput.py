"""Microbenchmarks: simulator component throughput.

These are conventional pytest-benchmark timings (multiple rounds) so
regressions in the hot paths — codec encode/decode, cache access, the
cleaning sweep — are visible across commits.
"""

import random

from repro.cache import CacheConfig, SetAssociativeCache
from repro.core import ProtectedL2, ProtectionConfig
from repro.ecc import ParityCodec, SecDedCodec

WORDS = [random.Random(0).getrandbits(64) for _ in range(256)]


def bench_secded_encode(benchmark):
    codec = SecDedCodec()

    def run():
        for w in WORDS:
            codec.encode(w)

    benchmark(run)


def bench_secded_check_clean(benchmark):
    codec = SecDedCodec()
    pairs = [(w, codec.encode(w)) for w in WORDS]

    def run():
        for w, c in pairs:
            codec.check(w, c)

    benchmark(run)


def bench_parity_encode(benchmark):
    codec = ParityCodec()

    def run():
        for w in WORDS:
            codec.encode(w)

    benchmark(run)


def _traffic(n, seed=1):
    rng = random.Random(seed)
    return [(rng.randrange(1 << 22) & ~7, rng.random() < 0.3)
            for _ in range(n)]


def bench_plain_cache_access(benchmark):
    refs = _traffic(4000)

    def run():
        cache = SetAssociativeCache(CacheConfig("l2", 65536, 4, 64))
        for cycle, (addr, w) in enumerate(refs):
            cache.access(addr, w, cycle)

    benchmark(run)


def bench_protected_cache_access(benchmark):
    refs = _traffic(4000)

    def run():
        l2 = ProtectedL2(
            CacheConfig("l2", 65536, 4, 64),
            ProtectionConfig(cleaning_interval=4096, ecc_entries_per_set=1),
        )
        for cycle, (addr, w) in enumerate(refs):
            l2.advance(cycle)
            l2.access(addr, w, cycle)

    benchmark(run)
