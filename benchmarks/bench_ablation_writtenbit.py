"""Ablation: the written bit's second-chance filter.

Without the written bit, the sweep writes back every dirty line it
visits, including lines still being written — which re-dirty at once
and turn into extra memory traffic.  This quantifies the 2 KB bit
array's value.
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import ablate_written_bit, render_series

SUBSET = ["mesa", "apsi", "gap", "parser", "twolf", "vpr"]


def bench_ablation_writtenbit(benchmark):
    res = benchmark.pedantic(
        ablate_written_bit,
        kwargs=dict(config=BENCH_CONFIG, benchmarks=SUBSET),
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_writtenbit",
        render_series(
            res, title="Ablation: cleaning with vs without the written bit"
        ),
    )

    for name, row in res.items():
        # Removing the filter can only clean at least as hard...
        assert row["without dirty %"] <= row["with dirty %"] + 1.0, name
        # ...at the cost of no less write-back traffic (within noise).
        assert row["without wb %"] >= row["with wb %"] - 0.3, name
