"""Extension: dirty-data exposure reduction — the scheme's reliability
side-benefit.

Both schemes rely on SECDED for dirty data, whose residual failure mode
is a double-bit error in one word during a dirty episode.  By cutting
the dirty population ~2.6x, the paper's cleaning + ECC eviction cut
that exposure by the same factor — a reliability improvement the paper
never claims credit for.  This bench quantifies it per benchmark.
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import exposure_comparison, render_series

SUBSET = ["swim", "mesa", "apsi", "mcf", "gap", "parser", "vpr", "twolf"]


def bench_exposure(benchmark):
    res = benchmark.pedantic(
        exposure_comparison,
        kwargs=dict(config=BENCH_CONFIG, benchmarks=SUBSET),
        rounds=1,
        iterations=1,
    )
    write_result(
        "exposure",
        render_series(
            res,
            title="Dirty-data exposure (millions of line-cycles): "
                  "conventional vs full scheme",
        ),
    )

    for name, row in res.items():
        assert row["exposure x"] >= 0.95, (name, row)  # never worse
    # Aggregate: the scheme cuts exposure by at least ~2x across the
    # suite (the paper's 51.6% -> <25% residency claim, integrated).
    total_org = sum(r["org Mlc"] for r in res.values())
    total_ours = sum(r["ours Mlc"] for r in res.values())
    assert total_org / total_ours >= 1.8, (total_org, total_ours)
