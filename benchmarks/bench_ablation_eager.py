"""Ablation: eager write-back [Lee et al.] vs written-bit cleaning.

Eager write-back cleans the LRU dirty line of a set on every access —
no extra state, but it acts only on replacement pressure; the paper's
interval sweep also reclaims sets that are never re-accessed.
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import ablate_eager_writeback, render_series

SUBSET = ["swim", "mesa", "apsi", "gap", "parser", "mcf"]


def bench_ablation_eager(benchmark):
    res = benchmark.pedantic(
        ablate_eager_writeback,
        kwargs=dict(config=BENCH_CONFIG, benchmarks=SUBSET),
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_eager",
        render_series(
            res,
            title="Ablation: eager write-back vs written-bit cleaning (1M)",
        ),
    )

    # Eager write-back acts only under replacement pressure, so the
    # cache-resident outliers (whose sets never fill) keep their dirty
    # populations; interval cleaning reaches them regardless.
    assert res["mesa"]["clean dirty %"] < 0.5 * res["mesa"]["eager dirty %"]
    avg_clean = sum(r["clean dirty %"] for r in res.values()) / len(res)
    avg_eager = sum(r["eager dirty %"] for r in res.values()) / len(res)
    assert avg_clean < avg_eager
