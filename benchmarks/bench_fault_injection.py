"""Extension: end-to-end reliability of the three protection policies.

Validates the protection-domain argument the paper rests on: the
non-uniform scheme tracks uniform ECC closely, while parity-only loses
dirty data outright.
"""

from _shared import write_result

from repro.core import (
    NonUniformPolicy,
    UniformEccPolicy,
    UniformParityPolicy,
)
from repro.core.policy import RecoveryAction
from repro.experiments import ReliabilityConfig, compare_policies, render_table

CONFIG = ReliabilityConfig(n_lines=64, n_events=20_000, seed=7)


def _run():
    return compare_policies(
        [UniformEccPolicy(), NonUniformPolicy(), UniformParityPolicy()],
        CONFIG,
    )


def bench_fault_injection(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                r.reads,
                r.rate(RecoveryAction.CORRECTED_IN_PLACE),
                r.rate(RecoveryAction.REFETCHED),
                r.rate(RecoveryAction.DATA_LOSS),
                r.rate(RecoveryAction.SILENT_CORRUPTION),
                r.unrecovered_rate,
            ]
        )
    table = render_table(
        ["policy", "reads", "corrected", "refetched", "data-loss",
         "silent", "unrecovered"],
        rows,
        ndigits=4,
        title="Fault injection: end-to-end recovery outcomes per policy",
    )
    write_result("fault_injection", table)

    ecc = results["uniform-ecc"]
    ours = results["non-uniform"]
    parity = results["uniform-parity"]
    # Parity alone loses dirty data; the other two protect it.
    assert parity.rate(RecoveryAction.DATA_LOSS) > ours.rate(
        RecoveryAction.DATA_LOSS
    )
    # The paper's scheme stays close to uniform ECC overall.
    assert ours.unrecovered_rate <= ecc.unrecovered_rate * 1.5 + 0.02
