"""Figure 5: write-back traffic vs cleaning interval, FP benchmarks.

Paper shape: the 1M interval's traffic approaches the uncleaned
baseline (1.13% vs 1.08% of loads/stores in the paper's setup), while
aggressive 64K cleaning costs extra write-backs.  Absolute percentages
here are higher than the paper's because the scaled L1 filters less
traffic (EXPERIMENTS.md discusses the offset); the interval ordering
and the 1M~org closeness are the reproduced shape.
"""

from _shared import BENCH_CONFIG, get_sweep, series_average, write_result

from repro.experiments import figure5_6, render_series


def bench_fig5_fp_traffic(benchmark):
    sweep = benchmark.pedantic(get_sweep, args=("fp",), rounds=1, iterations=1)
    f5 = figure5_6("fp", BENCH_CONFIG, sweep=sweep)
    write_result(
        "fig5_fp_traffic",
        render_series(
            f5, title="Figure 5: write-backs as % of loads/stores (FP)"
        ),
    )

    org = series_average(f5, "org")
    one_m = series_average(f5, "1M")
    small = series_average(f5, "64K")
    # 1M interval stays close to org (paper: 1.13% vs 1.08%).
    assert one_m <= org * 1.35 + 0.3, (one_m, org)
    # Aggressive cleaning costs at least as much traffic as 1M.
    assert small >= one_m - 0.2, (small, one_m)
