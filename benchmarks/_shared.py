"""Shared plumbing for the benchmark harness.

Every bench regenerates one table or figure of the paper, asserts the
reproduction's acceptance criteria (shape, not absolute numbers — see
DESIGN.md §4) and writes the rendered table under
``benchmarks/results/`` so EXPERIMENTS.md can cite the exact output.

The cleaning-interval sweep behind Figures 3–6 is memoised here so the
four figure benches do not re-simulate the same 70 runs.  The sweeps go
through :class:`repro.experiments.SweepEngine`; set ``REPRO_JOBS=N`` to
fan the grid over N worker processes and ``REPRO_SWEEP_CACHE=1`` to
reuse the on-disk result cache across bench invocations.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict

from repro.experiments import RunConfig, SweepEngine, interval_sweep

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The standard workload size for figure regeneration.
BENCH_CONFIG = RunConfig(n_refs=120_000, warmup_refs=40_000)

_SWEEPS: Dict[str, dict] = {}


def make_engine() -> SweepEngine:
    """Sweep engine configured from the environment (see module docs)."""
    return SweepEngine(
        jobs=int(os.environ.get("REPRO_JOBS", "1")),
        cache=os.environ.get("REPRO_SWEEP_CACHE", "") not in ("", "0"),
    )


def get_sweep(suite: str) -> dict:
    """Memoised interval sweep for a suite ('fp' or 'int')."""
    if suite not in _SWEEPS:
        _SWEEPS[suite] = interval_sweep(suite, BENCH_CONFIG,
                                        engine=make_engine())
    return _SWEEPS[suite]


def write_result(name: str, text: str) -> None:
    """Persist a rendered table for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def series_average(series: Dict[str, Dict[str, float]], column: str) -> float:
    """Arithmetic mean of one column across benchmarks."""
    vals = [row[column] for row in series.values() if column in row]
    return sum(vals) / len(vals)
