"""Figure 3: dirty % vs cleaning interval, floating-point benchmarks.

Paper shape: smaller intervals reduce dirty residency monotonically;
applu, swim, mgrid and equake show little reduction at the 4M interval
(their lines are evicted before long intervals elapse); 256K lands near
2K dirty lines (12.5%) on average.
"""

from _shared import BENCH_CONFIG, get_sweep, series_average, write_result

from repro.experiments import figure3_4, render_series

INTERVALS = ["64K", "256K", "1M", "4M"]


def bench_fig3_fp_intervals(benchmark):
    sweep = benchmark.pedantic(get_sweep, args=("fp",), rounds=1, iterations=1)
    f3 = figure3_4("fp", BENCH_CONFIG, sweep=sweep)
    write_result(
        "fig3_fp_intervals",
        render_series(f3, title="Figure 3: dirty % vs cleaning interval (FP)"),
    )

    # Monotone on average: smaller interval -> fewer dirty lines.
    avgs = [series_average(f3, c) for c in INTERVALS + ["org"]]
    assert all(a <= b + 1.0 for a, b in zip(avgs, avgs[1:])), avgs
    # The paper's streaming group barely moves at 4M.
    for name in ("applu", "swim", "mgrid", "equake"):
        assert f3[name]["4M"] > 0.8 * f3[name]["org"], name
    # 256K approaches the paper's ~12.5% anchor.
    assert 5.0 <= series_average(f3, "256K") <= 22.0
