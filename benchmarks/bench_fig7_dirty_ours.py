"""Figure 7: dirty % per cycle under the full scheme.

Paper: with 1M-interval cleaning plus the 1-entry-per-set shared ECC
array, every benchmark's dirty residency drops below 25% — including
the four Figure-1 outliers (apsi, mesa, gap, parser), because ECC-entry
evictions force extra lines clean.  The 25% bound is structural: at
most one dirty line per 4-way set.
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import figure1, figure7, render_series


def bench_fig7_dirty_ours(benchmark):
    f7 = benchmark.pedantic(
        figure7, args=(BENCH_CONFIG,), rounds=1, iterations=1
    )
    write_result(
        "fig7_dirty_ours",
        render_series(
            {k: {"dirty %": v} for k, v in f7.items()},
            title="Figure 7: % dirty lines per cycle (full scheme)",
        ),
    )

    for name, pct in f7.items():
        assert pct <= 25.0 + 1e-6, (name, pct)

    # The outliers' dirty populations are mostly removed vs Figure 1.
    f1 = figure1(BENCH_CONFIG)
    for name in ("apsi", "mesa", "gap", "parser"):
        assert f7[name] < 0.5 * f1[name], (name, f7[name], f1[name])
