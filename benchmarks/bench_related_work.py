"""Extension: coverage comparison against the related-work schemes.

Kim & Somani [9] protect only frequently-accessed lines; in-cache
replication [10] protects blocks that find a dead partner.  Both leave
coverage holes that depend on the workload — the paper's motivation for
protecting *everything* non-uniformly.  Coverage here is measured per
access (the metric most favourable to [9]: even streaming sweeps get
spatial-locality coverage); the pointer-chasing mcf shows the scheme's
failure mode regardless.
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import (
    kim_somani_coverage,
    related_work_table,
    render_series,
)

SUBSET = ["swim", "mesa", "apsi", "mcf", "gap", "parser"]


def bench_related_work(benchmark):
    res = benchmark.pedantic(
        related_work_table,
        kwargs=dict(benchmarks=SUBSET, config=BENCH_CONFIG),
        rounds=1,
        iterations=1,
    )
    write_result(
        "related_work",
        render_series(
            res,
            title="Related work: % of accesses protected, per scheme",
        ),
    )

    for name, row in res.items():
        assert row["ours"] == 100.0
        assert row["kim-somani@1K"] <= 100.0
        assert row["icr"] <= 100.0
    # The paper's contrast: hot-line protection collapses on
    # low-locality workloads the scheme must still protect.
    assert res["mcf"]["kim-somani@1K"] < 50.0

    # Coverage grows with table size (area), per benchmark.
    points = kim_somani_coverage("parser", entries_grid=(64, 1024),
                                 config=BENCH_CONFIG)
    assert points[0].coverage_pct <= points[1].coverage_pct + 1e-9
    assert points[0].area_kib < points[1].area_kib
