"""Figure 4: dirty % vs cleaning interval, integer benchmarks.

Paper shape: as Figure 3; mcf joins the little-reduction-at-4M group.
"""

from _shared import BENCH_CONFIG, get_sweep, series_average, write_result

from repro.experiments import figure3_4, render_series

INTERVALS = ["64K", "256K", "1M", "4M"]


def bench_fig4_int_intervals(benchmark):
    sweep = benchmark.pedantic(get_sweep, args=("int",), rounds=1, iterations=1)
    f4 = figure3_4("int", BENCH_CONFIG, sweep=sweep)
    write_result(
        "fig4_int_intervals",
        render_series(f4, title="Figure 4: dirty % vs cleaning interval (INT)"),
    )

    avgs = [series_average(f4, c) for c in INTERVALS + ["org"]]
    assert all(a <= b + 1.0 for a, b in zip(avgs, avgs[1:])), avgs
    # mcf barely moves at 4M (pointer chasing over 8x the cache).
    assert f4["mcf"]["4M"] > 0.8 * f4["mcf"]["org"]
    # The high-dirty outliers are cleanable at small intervals.
    for name in ("gap", "parser"):
        assert f4[name]["64K"] < 0.25 * f4[name]["org"], name
