"""Ablation: shared-ECC-array size (entries per set).

The paper fixes one entry per set (32 KB).  This sweep quantifies the
trade-off it implies: more entries cost area but cut ECC-WB traffic and
raise the structural dirty-residency cap.
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import ablate_ecc_entries, render_table

SUBSET = ["mesa", "apsi", "gap", "parser", "swim", "mcf"]


def bench_ablation_eccways(benchmark):
    points = benchmark.pedantic(
        ablate_ecc_entries,
        kwargs=dict(benchmarks=SUBSET, entries_grid=(1, 2, 4),
                    config=BENCH_CONFIG),
        rounds=1,
        iterations=1,
    )
    table = render_table(
        ["entries/set", "area KiB", "dirty %", "ECC-WB %", "total WB %"],
        [
            [p.entries_per_set, p.area_kib, p.dirty_pct, p.ecc_wb_pct,
             p.total_wb_pct]
            for p in points
        ],
        title="Ablation: shared ECC array size (avg over 6 benchmarks)",
    )
    write_result("ablation_eccways", table)

    # Area grows linearly with entries.
    assert points[0].area_kib == 54.0
    assert points[-1].area_kib > points[0].area_kib
    # More entries -> fewer forced ECC write-backs.
    assert points[-1].ecc_wb_pct <= points[0].ecc_wb_pct + 0.1
