"""Ablation: is the ~50%-dirty observation replacement-policy dependent?

The paper's Figure 1 premise (half the cache is dirty, with specific
outliers) is measured under LRU.  This sweep confirms the shape holds
under FIFO and random replacement too — the dirty population is a
property of the workloads' write behaviour, not of the policy.
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import ablate_replacement, render_series

SUBSET = ["swim", "mesa", "apsi", "mcf", "gap", "parser"]


def bench_ablation_replacement(benchmark):
    res = benchmark.pedantic(
        ablate_replacement,
        kwargs=dict(config=BENCH_CONFIG, benchmarks=SUBSET),
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_replacement",
        render_series(
            res, title="Ablation: baseline dirty % under L2 replacement "
                       "policies"
        ),
    )

    for name, row in res.items():
        vals = list(row.values())
        spread = max(vals) - min(vals)
        # Residency shifts only modestly across policies.
        assert spread < 25.0, (name, row)
    # The outliers stay outliers under every policy.
    for policy in ("lru", "fifo", "random"):
        assert res["apsi"][policy] > res["mcf"][policy]
        assert res["parser"][policy] > res["swim"][policy]
