"""Ablation: written-bit cleaning vs cache-decay cleaning [12].

The paper's heuristic descends from Kaxiras et al.'s cache decay.  The
crucial difference: decay only reclaims *fully idle* lines, while the
written bit reclaims lines that are still read-hot but write-dead —
which is most of the resident dirty population in the outlier
benchmarks.  This bench quantifies the gap.
"""

from _shared import BENCH_CONFIG, write_result

from repro.experiments import ablate_cleaning_policy, render_series

SUBSET = ["swim", "mesa", "apsi", "gap", "parser", "vpr"]


def bench_ablation_decay(benchmark):
    res = benchmark.pedantic(
        ablate_cleaning_policy,
        kwargs=dict(config=BENCH_CONFIG, benchmarks=SUBSET),
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_decay",
        render_series(
            res,
            title="Ablation: written-bit vs decay-based cleaning (1M)",
        ),
    )

    avg_written = sum(r["written dirty %"] for r in res.values()) / len(res)
    avg_decay = sum(r["decay dirty %"] for r in res.values()) / len(res)
    # The written bit reclaims strictly more dirty residency on average.
    assert avg_written < avg_decay, (avg_written, avg_decay)
    # And specifically on the read-hot/write-dead outliers.
    for name in ("mesa", "parser"):
        assert res[name]["written dirty %"] < res[name]["decay dirty %"], name
