"""Table 1: the baseline processor configuration block."""

from _shared import write_result

from repro.experiments import table1


def bench_table1(benchmark):
    text = benchmark.pedantic(table1, rounds=1, iterations=1)
    write_result("table1", text)
    assert "64-entry RUU" in text
    assert "32-entry LSQ" in text
    assert "4 instructions per cycle" in text
    assert "4 INT add, 1 INT mult/div" in text
    assert "1 FP add, 1 FP mult/div" in text
