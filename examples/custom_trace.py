#!/usr/bin/env python
"""Bring your own trace: file-driven simulation of the protected L2.

Writes a small synthetic trace to disk (the binary trace format), loads
it back, and runs it through both the conventional and the protected
hierarchy — the workflow a user with real application traces would
follow.  Traces are plain sequences of (R/W, address, gap) records; see
``repro.workloads.io`` for the two formats.

Run:  python examples/custom_trace.py
"""

import itertools
import tempfile
from pathlib import Path

from repro.core import ProtectionConfig
from repro.experiments import RunConfig, render_table, run_trace
from repro.workloads import (
    get_benchmark,
    load_trace,
    make_ref_stream,
    save_trace,
    summarize_trace,
)


def main():
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    trace_path = workdir / "workload.trc"

    # 1. Produce a trace file (here synthetic; yours can come from
    #    a real application, pin tool, etc.).
    stream = itertools.islice(
        make_ref_stream(get_benchmark("gap"), 64 * 1024, seed=1), 50_000
    )
    n = save_trace(stream, trace_path, fmt="binary")
    summary = summarize_trace(load_trace(trace_path))
    print(
        f"trace: {n} refs, write ratio {summary.write_ratio:.2f}, "
        f"footprint {summary.footprint_bytes // 1024} KiB, "
        f"{summary.instructions} instructions implied\n"
    )

    # 2. Run it against both L2 configurations.
    config = RunConfig(n_refs=40_000, warmup_refs=10_000)
    rows = []
    for label, protection in (
        ("conventional", None),
        ("protected", ProtectionConfig(cleaning_interval=1 << 20,
                                       ecc_entries_per_set=1)),
    ):
        out = run_trace(load_trace(trace_path), protection, config,
                        label=label)
        rows.append(
            [label, 100 * out.dirty_fraction, 100 * out.writeback_fraction,
             out.l2_miss_rate]
        )
    print(render_table(
        ["configuration", "avg dirty %", "writeback %", "L2 miss rate"],
        rows,
        title="Trace-driven comparison",
    ))


if __name__ == "__main__":
    main()
