#!/usr/bin/env python
"""Soft-error recovery walkthrough at the payload level.

Shows, with real parity and SECDED(72,64) codecs over real 64-byte
payloads, exactly why the paper's non-uniform protection is safe:

1. a clean line hit by a particle strike fails parity and is refetched
   from memory — no ECC needed;
2. a dirty line hit by a strike is repaired in place by its ECC;
3. a dirty line hit twice in one word is detected but unrecoverable —
   the accepted residual risk of SECDED, identical to the conventional
   design;
4. a dirty line under parity alone (what the paper avoids) is data loss
   on the *first* strike.

Run:  python examples/soft_error_recovery.py
"""

from repro.core import LineProtection, NonUniformPolicy, UniformParityPolicy


def show(title, line, flips):
    for byte, bit in flips:
        line.flip(byte, bit)
    action, data = line.access()
    intact = "payload intact" if data == line.golden else "payload WRONG"
    state = "dirty" if line.dirty else "clean"
    print(f"{title:55s} [{state}] -> {action.value:12s} ({intact})")


def main():
    payload = bytes(range(64))

    print("Non-uniform protection (the paper's scheme):")
    clean = LineProtection(NonUniformPolicy(), payload)
    show("  1. clean line, 1-bit strike (parity detects)", clean, [(7, 3)])

    dirty = LineProtection(NonUniformPolicy(), payload)
    dirty.write(bytes(64))
    show("  2. dirty line, 1-bit strike (ECC corrects)", dirty, [(9, 1)])

    doubly = LineProtection(NonUniformPolicy(), payload)
    doubly.write(bytes(64))
    show(
        "  3. dirty line, 2-bit strike in one word (SECDED limit)",
        doubly,
        [(16, 0), (17, 4)],
    )

    print("\nParity-only on dirty data (what the paper rules out):")
    unsafe = LineProtection(UniformParityPolicy(), payload)
    unsafe.write(bytes(64))
    show("  4. dirty line, 1-bit strike, parity only", unsafe, [(3, 3)])


if __name__ == "__main__":
    main()
