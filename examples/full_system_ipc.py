#!/usr/bin/env python
"""Full-system run: does the protection scheme cost performance?

Drives the four-issue out-of-order core (Table 1) through a benchmark's
full instruction stream twice — conventional L2 vs the paper's
protected L2 — and reports IPC, branch behaviour and memory-bus
pressure.  The paper's claim: the extra write-backs (cleaning + ECC
evictions) contend only on the split-transaction bus, costing <1% IPC.

Run:  python examples/full_system_ipc.py [benchmark]
"""

import sys

from repro.core import ProtectionConfig
from repro.experiments import RunConfig, render_table, run_ipc


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "parser"
    config = RunConfig(n_refs=40_000, warmup_refs=0)
    n_insts = 120_000

    org = run_ipc(benchmark, None, config, n_insts=n_insts)
    ours = run_ipc(
        benchmark,
        ProtectionConfig(cleaning_interval=1 << 20, ecc_entries_per_set=1),
        config,
        n_insts=n_insts,
    )

    loss = 100 * (org.ipc - ours.ipc) / org.ipc if org.ipc else 0.0
    rows = [
        ["IPC", org.ipc, ours.ipc],
        ["cycles", org.result.cycles, ours.result.cycles],
        ["branch mispredict rate", org.result.mispredict_rate,
         ours.result.mispredict_rate],
        ["writebacks / loads+stores", org.writeback_fraction,
         ours.writeback_fraction],
        ["avg dirty fraction", org.dirty_fraction, ours.dirty_fraction],
    ]
    print(
        render_table(
            ["metric", "conventional", "protected"],
            rows,
            ndigits=3,
            title=f"{benchmark}: {n_insts} instructions on the Table-1 core",
        )
    )
    print(f"\nIPC loss: {loss:.2f}%  (paper reports <1% on average)")


if __name__ == "__main__":
    main()
