#!/usr/bin/env python
"""Reliability study: how safe is non-uniform protection, really?

Runs seeded fault-injection campaigns over real payloads for the three
protection policies and charts the end-to-end outcomes — the argument
behind the paper's Section 3.1, quantified.  Also sweeps the strike
rate to show the ordering is stable.

Run:  python examples/reliability_study.py
"""

from repro.core import (
    NonUniformPolicy,
    UniformEccPolicy,
    UniformParityPolicy,
)
from repro.core.policy import RecoveryAction
from repro.experiments import (
    ReliabilityConfig,
    compare_policies,
    render_bars,
    render_table,
)

POLICIES = [UniformEccPolicy(), NonUniformPolicy(), UniformParityPolicy()]


def main():
    config = ReliabilityConfig(n_lines=64, n_events=15_000, seed=11)
    results = compare_policies(POLICIES, config)

    rows = []
    for name, r in results.items():
        rows.append([
            name,
            r.rate(RecoveryAction.CORRECTED_IN_PLACE),
            r.rate(RecoveryAction.REFETCHED),
            r.rate(RecoveryAction.DATA_LOSS),
            r.rate(RecoveryAction.SILENT_CORRUPTION),
        ])
    print(render_table(
        ["policy", "corrected", "refetched", "data-loss", "silent"],
        rows,
        ndigits=4,
        title="Per-read recovery outcomes (10% strike rate)",
    ))

    print()
    print(render_bars(
        {name: 100 * r.unrecovered_rate for name, r in results.items()},
        width=40,
        title="Unrecovered reads (lower is better)",
    ))

    print("\nStrike-rate sweep (unrecovered %, non-uniform vs uniform ECC):")
    for rate in (0.02, 0.05, 0.10, 0.20):
        cfg = ReliabilityConfig(n_lines=64, n_events=10_000,
                                fault_rate=rate, seed=5)
        res = compare_policies(
            [UniformEccPolicy(), NonUniformPolicy()], cfg
        )
        print(
            f"  strike rate {rate:4.0%}: "
            f"uniform-ecc {100 * res['uniform-ecc'].unrecovered_rate:5.2f}%  "
            f"non-uniform {100 * res['non-uniform'].unrecovered_rate:5.2f}%"
        )


if __name__ == "__main__":
    main()
