#!/usr/bin/env python
"""Tuning the cleaning interval: the dirty-residency vs traffic trade-off.

Reproduces the paper's Figures 3/5 story on two contrasting benchmarks:

* ``mesa`` — a cache-resident working set that accumulates write-dead
  dirty lines: cleaning reclaims almost all of them, and even the
  aggressive intervals cost little extra traffic.
* ``swim`` — a streaming footprint 8x the cache: lines are evicted
  before long intervals elapse, so only small intervals change anything
  and the write-back each one performs merely happens earlier.

Run:  python examples/interval_tuning.py
"""

from repro.core import ProtectionConfig
from repro.experiments import RunConfig, render_table, run_refs
from repro.experiments.runner import interval_label


def sweep(benchmark: str, config: RunConfig):
    rows = []
    org = run_refs(benchmark, None, config)
    for paper_interval in config.geometry.paper_intervals:
        res = run_refs(
            benchmark,
            ProtectionConfig(
                cleaning_interval=paper_interval, ecc_entries_per_set=None
            ),
            config,
        )
        rows.append(
            [
                interval_label(paper_interval),
                100 * res.dirty_fraction,
                100 * res.writeback_fraction,
                100 * res.writeback_split["Clean-WB"],
            ]
        )
    rows.append(
        ["org", 100 * org.dirty_fraction, 100 * org.writeback_fraction, 0.0]
    )
    return rows


def main():
    config = RunConfig(n_refs=60_000, warmup_refs=20_000)
    for benchmark in ("mesa", "swim"):
        rows = sweep(benchmark, config)
        print(
            render_table(
                ["interval", "dirty %", "writeback %", "clean-WB %"],
                rows,
                title=f"\n{benchmark}: cleaning interval sweep",
            )
        )


if __name__ == "__main__":
    main()
