#!/usr/bin/env python
"""Quickstart: protect an L2 cache the paper's way, in ~40 lines.

Builds the paper's memory hierarchy twice — once with a conventional
uniformly-ECC L2 and once with the protected L2 (parity everywhere, ECC
only for dirty lines, 1M-cycle cleaning, one shared ECC entry per set)
— drives both with the same synthetic workload, and prints what the
scheme buys: the same workload behaviour at 59% less protection area,
with a bounded dirty-line population.

Run:  python examples/quickstart.py
"""

import itertools

from repro.cache import MemoryHierarchy
from repro.cache.hierarchy import default_l2_config
from repro.core import (
    ProtectedL2,
    ProtectionConfig,
    conventional_overhead,
    proposed_overhead,
    reduction,
)
from repro.experiments import SCALED_GEOMETRY
from repro.workloads import get_benchmark, make_ref_stream


def run(hierarchy, refs):
    cycle = 0
    for ref in refs:
        cycle += 1 + ref.gap
        if ref.is_write:
            hierarchy.store(ref.addr, cycle)
        else:
            hierarchy.load(ref.addr, cycle)
    return cycle


def main():
    geometry = SCALED_GEOMETRY  # 1/16-scale capacities; fast to simulate
    spec = get_benchmark("mesa")  # a high-dirty-residency benchmark

    # Conventional L2: every line carries full ECC.
    baseline = MemoryHierarchy(config=geometry.hierarchy_config())

    # The paper's L2: cleaning + shared per-set ECC array.
    protected_l2 = ProtectedL2(
        geometry.hierarchy_config().l2,
        ProtectionConfig(
            cleaning_interval=geometry.scaled_interval(1 << 20),
            ecc_entries_per_set=1,
        ),
    )
    ours = MemoryHierarchy(config=geometry.hierarchy_config(), l2=protected_l2)

    for name, h in (("conventional", baseline), ("protected", ours)):
        refs = itertools.islice(
            make_ref_stream(spec, geometry.l2_bytes, seed=0), 80_000
        )
        cycles = run(h, refs)
        dirty = 100 * h.l2.dirty.average_dirty_fraction(cycles)
        print(f"{name:12s}: avg dirty lines {dirty:5.1f}%  "
              f"writebacks {100 * h.writeback_fraction():.2f}% of refs")
    print(f"protected L2 write-back causes: {protected_l2.writeback_breakdown()}")

    # The area story is computed on the paper's full 1MB geometry.
    l2 = default_l2_config()
    conv, prop = conventional_overhead(l2), proposed_overhead(l2)
    print(
        f"\nprotection area, 1MB L2: conventional {conv.total_kib:.0f} KiB"
        f" -> proposed {prop.total_kib:.0f} KiB"
        f" ({100 * reduction(conv, prop):.0f}% smaller)"
    )


if __name__ == "__main__":
    main()
