#!/usr/bin/env python
"""Multiprogrammed workloads: cleaning under phase behaviour.

Time-shares the protected L2 between two very different programs —
cache-resident mesa and streaming swim — in coarse phases, and adds
idle pauses (I/O waits) during which the cleaning FSM has the cache to
itself.  Shows that the scheme's dirty cap holds across phase changes
and that idle periods let cleaning fully drain the dirty population
left behind by a departing program.

Run:  python examples/multiprogrammed.py
"""

import itertools

from repro.cache import MemoryHierarchy
from repro.core import ProtectedL2, ProtectionConfig
from repro.experiments import SCALED_GEOMETRY, render_table
from repro.workloads import get_benchmark, make_ref_stream
from repro.workloads.phases import phase_alternate, with_pauses


def main():
    geometry = SCALED_GEOMETRY
    l2 = ProtectedL2(
        geometry.hierarchy_config().l2,
        ProtectionConfig(
            cleaning_interval=geometry.scaled_interval(1 << 20),
            ecc_entries_per_set=1,
        ),
    )
    hierarchy = MemoryHierarchy(config=geometry.hierarchy_config(), l2=l2)

    streams = [
        make_ref_stream(get_benchmark("mesa"), geometry.l2_bytes, seed=0),
        make_ref_stream(get_benchmark("swim"), geometry.l2_bytes, seed=0),
    ]
    workload = with_pauses(
        phase_alternate(streams, phase_len=20_000),
        active_refs=40_000,
        pause_cycles=50_000,
    )

    cycle = 0
    samples = []
    for i, ref in enumerate(itertools.islice(workload, 160_000)):
        cycle += 1 + ref.gap
        (hierarchy.store if ref.is_write else hierarchy.load)(ref.addr, cycle)
        if i % 20_000 == 19_999:
            samples.append(
                [i + 1, cycle, l2.dirty.dirty_count,
                 100 * l2.dirty.dirty_count / l2.config.n_lines]
            )

    print(render_table(
        ["refs", "cycle", "dirty lines", "dirty %"],
        samples,
        title="Dirty population across phases and pauses",
    ))
    print(
        f"\npeak dirty: {100 * l2.dirty.peak_dirty / l2.config.n_lines:.1f}%"
        f"  (structural cap 25%)\n"
        f"write-back causes: {l2.writeback_breakdown()}"
    )


if __name__ == "__main__":
    main()
