#!/usr/bin/env python
"""Protecting the third cache level.

The paper's motivation covers L2 *and* L3 caches (POWER4 and Itanium
protect both with ECC).  This example builds a three-level hierarchy
with the protected cache at the L3, shows the structural dirty cap at
work (one ECC entry per 8-way set → at most 12.5% dirty) and computes
the area story for a full-size 4MB L3 — where the saving *exceeds* the
paper's 59%, because one shared entry amortises over eight ways.

Run:  python examples/three_level_l3.py
"""

import itertools
from dataclasses import replace

from repro.cache import MemoryHierarchy
from repro.cache.cache import CacheConfig
from repro.core import (
    ProtectedL2,
    ProtectionConfig,
    conventional_overhead,
    proposed_overhead,
    reduction,
)
from repro.experiments import SCALED_GEOMETRY, render_table
from repro.workloads import get_benchmark, make_ref_stream


def main():
    geometry = SCALED_GEOMETRY
    base = geometry.hierarchy_config()
    hier_cfg = replace(
        base,
        l3=CacheConfig("l3", 4 * base.l2.size_bytes, 8, 64, hit_latency=25),
    )

    l3 = ProtectedL2(
        hier_cfg.l3,
        ProtectionConfig(
            cleaning_interval=geometry.scaled_interval(1 << 20),
            ecc_entries_per_set=1,
        ),
    )
    hierarchy = MemoryHierarchy(config=hier_cfg, l3=l3)

    # bzip2's footprint fits the L3 but not the L2: the interesting case.
    stream = make_ref_stream(get_benchmark("bzip2"), geometry.l2_bytes,
                             seed=0)
    cycle = 0
    for ref in itertools.islice(stream, 80_000):
        cycle += 1 + ref.gap
        (hierarchy.store if ref.is_write else hierarchy.load)(ref.addr, cycle)

    rows = [
        ["L2 avg dirty %", 100 * hierarchy.l2.dirty.average_dirty_fraction(cycle)],
        ["L3 avg dirty %", 100 * l3.dirty.average_dirty_fraction(cycle)],
        ["L3 peak dirty % (cap: 12.5)", 100 * l3.dirty.peak_dirty / l3.config.n_lines],
        ["L3 Clean-WB", l3.stats.writebacks_cleaning],
        ["L3 ECC-WB", l3.stats.writebacks_ecc_eviction],
    ]
    print(render_table(["metric", "value"], rows,
                       title="bzip2 through a protected L3 (scaled)"))

    full_l3 = CacheConfig("l3", 4 * 1024 * 1024, 8, 64)
    conv, ours = conventional_overhead(full_l3), proposed_overhead(full_l3)
    print(
        f"\n4MB 8-way L3 protection area: {conv.total_kib:.0f} KiB -> "
        f"{ours.total_kib:.0f} KiB ({100 * reduction(conv, ours):.1f}% "
        f"reduction; the paper's 4-way L2 gives 59%)"
    )


if __name__ == "__main__":
    main()
